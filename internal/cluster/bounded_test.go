package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// benchFixture is the clustering workload of the pick benchmarks' 10%-budget
// regime: n normalized feature rows with blob structure plus noise, the
// shape clusterSelectFast hands to the clusterer. Shared by the skip-rate
// test and BenchmarkKMeans so the counter assertion covers exactly what the
// benchmark measures.
func benchFixture(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	nBlobs := 4
	centers := make([][]float64, nBlobs)
	for b := range centers {
		centers[b] = make([]float64, dim)
		for j := range centers[b] {
			centers[b][j] = rng.Float64()
		}
	}
	points := make([][]float64, n)
	for i := range points {
		c := centers[i%nBlobs]
		p := make([]float64, dim)
		for j := range p {
			p[j] = c[j] + rng.NormFloat64()*0.3
		}
		points[i] = p
	}
	return points
}

// assertLabelsEquivalent checks the divergence contract of the bounded path:
// labels must match the reference exactly, except for points whose two
// closest reference centers are equidistant to within float rounding (a
// nearest-center tie, where the bounds may legitimately keep the stale
// label).
func assertLabelsEquivalent(t *testing.T, points [][]float64, ref, got Assignment) {
	t.Helper()
	if ref.K != got.K {
		t.Fatalf("K = %d, reference %d", got.K, ref.K)
	}
	// Reference centroids for tie checking.
	refCenters := centroids(points, ref)
	gotCenters := centroids(points, got)
	for i := range ref.Labels {
		if ref.Labels[i] == got.Labels[i] {
			continue
		}
		dRef := sqDist(points[i], refCenters[ref.Labels[i]])
		dGot := sqDist(points[i], gotCenters[got.Labels[i]])
		if rel := math.Abs(dRef-dGot) / math.Max(math.Max(dRef, dGot), 1e-300); rel > 1e-9 {
			t.Fatalf("point %d: label %d (dist² %v) vs reference %d (dist² %v) — divergence beyond a nearest-center tie",
				i, got.Labels[i], dGot, ref.Labels[i], dRef)
		}
	}
}

func centroids(points [][]float64, a Assignment) [][]float64 {
	if len(points) == 0 {
		return nil
	}
	dim := len(points[0])
	out := make([][]float64, a.K)
	counts := make([]int, a.K)
	for c := range out {
		out[c] = make([]float64, dim)
	}
	for i, l := range a.Labels {
		counts[l]++
		for j, v := range points[i] {
			out[l][j] += v
		}
	}
	for c := range out {
		if counts[c] > 0 {
			for j := range out[c] {
				out[c][j] /= float64(counts[c])
			}
		}
	}
	return out
}

// TestKMeansBoundedStrictBitIdentical is the strict half of the equivalence
// contract: with pruning disabled, the bounded implementation (flat center
// storage, parallel sweep, shared in-place update) must reproduce the
// reference assignment bit for bit across randomized inputs, seeds, shapes
// and parallelism settings.
func TestKMeansBoundedStrictBitIdentical(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := rng.Intn(60) + 1
		dim := rng.Intn(12) + 1
		k := rng.Intn(12) + 1
		points := make([][]float64, n)
		for i := range points {
			points[i] = make([]float64, dim)
			for j := range points[i] {
				points[i][j] = rng.NormFloat64()
			}
		}
		// A quarter of the trials use duplicated points, which force empty
		// clusters and the re-seed path.
		if trial%4 == 0 {
			for i := range points {
				points[i] = points[0]
			}
		}
		for _, par := range []int{1, 4} {
			ref := KMeansReference(points, k, rand.New(rand.NewSource(int64(trial)*7+1)), 0)
			got := KMeansBounded(points, k, rand.New(rand.NewSource(int64(trial)*7+1)),
				KMeansOpts{Strict: true, Parallelism: par})
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("trial %d parallelism %d: strict bounded diverges from reference\nref: %v\ngot: %v",
					trial, par, ref, got)
			}
		}
	}
}

// TestKMeansBoundedMatchesReference is the default-mode half: with pruning
// on, labels must match the reference except on documented nearest-center
// ties.
func TestKMeansBoundedMatchesReference(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1000))
		n := rng.Intn(80) + 1
		dim := rng.Intn(16) + 1
		k := rng.Intn(14) + 1
		points := make([][]float64, n)
		for i := range points {
			points[i] = make([]float64, dim)
			for j := range points[i] {
				points[i][j] = rng.NormFloat64() * (1 + float64(i%3))
			}
		}
		ref := KMeansReference(points, k, rand.New(rand.NewSource(int64(trial)*13+5)), 0)
		got := KMeansBounded(points, k, rand.New(rand.NewSource(int64(trial)*13+5)), KMeansOpts{})
		assertLabelsEquivalent(t, points, ref, got)
	}
}

// TestKMeansBoundedSkipsDistancesOnBenchFixture counter-asserts the point of
// the bounds: on the pick benchmark's clustering shape the sweeps must skip
// at least 70% of the distance computations the reference performs.
func TestKMeansBoundedSkipsDistancesOnBenchFixture(t *testing.T) {
	points := benchFixture(128, 32, 42)
	var st KMeansStats
	KMeansBounded(points, 13, rand.New(rand.NewSource(9)), KMeansOpts{Stats: &st})
	if st.Iterations < 2 {
		t.Fatalf("fixture converged in %d iteration(s); not a meaningful pruning workload", st.Iterations)
	}
	if st.PointDists >= st.PossibleDists {
		t.Fatalf("bounded path computed %d of %d possible distances — no pruning at all", st.PointDists, st.PossibleDists)
	}
	if frac := st.SkippedFrac(); frac < 0.70 {
		t.Fatalf("skipped %.1f%% of distance computations (%d of %d), want ≥ 70%%",
			frac*100, st.PossibleDists-st.PointDists, st.PossibleDists)
	}
	// Strict mode must report no savings.
	var strict KMeansStats
	KMeansBounded(points, 13, rand.New(rand.NewSource(9)), KMeansOpts{Strict: true, Stats: &strict})
	if strict.PointDists != strict.PossibleDists {
		t.Fatalf("strict mode computed %d of %d distances, want all", strict.PointDists, strict.PossibleDists)
	}
}

// TestKMeansBoundedDeterministicAcrossParallelism runs the bounded path at
// Parallelism 1, 4 and 8 over randomized inputs; all settings must agree bit
// for bit. Under -race this also proves the sweep's sharing discipline.
func TestKMeansBoundedDeterministicAcrossParallelism(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 500))
		n := rng.Intn(300) + 50 // enough points for several sweep blocks
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.Float64() * 5}
		}
		k := rng.Intn(10) + 2
		base := KMeansBounded(points, k, rand.New(rand.NewSource(int64(trial))), KMeansOpts{Parallelism: 1})
		for _, par := range []int{4, 8} {
			got := KMeansBounded(points, k, rand.New(rand.NewSource(int64(trial))), KMeansOpts{Parallelism: par})
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("trial %d: parallelism %d diverges from parallelism 1", trial, par)
			}
		}
	}
}

// TestKMeansReseedsEmptyClusters forces the empty-cluster re-seed path:
// duplicate points make k-means++ seed two centers on the same coordinates,
// so one cluster captures nothing on the first assignment (ascending-scan
// tie-break sends every tied point to the lower center) and must be
// re-seeded at the farthest point. Both implementations must agree and
// still produce k non-degenerate clusters.
func TestKMeansReseedsEmptyClusters(t *testing.T) {
	// 10 copies of the origin and two distant singletons: with k=3 the
	// origin-heavy mass forces at least one duplicate seed.
	var points [][]float64
	for i := 0; i < 10; i++ {
		points = append(points, []float64{0, 0})
	}
	points = append(points, []float64{100, 0}, []float64{0, 100})
	for seed := int64(0); seed < 30; seed++ {
		ref := KMeansReference(points, 3, rand.New(rand.NewSource(seed)), 0)
		got := KMeansBounded(points, 3, rand.New(rand.NewSource(seed)), KMeansOpts{})
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("seed %d: bounded diverges from reference on the re-seed fixture\nref: %v\ngot: %v", seed, ref, got)
		}
		strict := KMeansBounded(points, 3, rand.New(rand.NewSource(seed)), KMeansOpts{Strict: true})
		if !reflect.DeepEqual(ref, strict) {
			t.Fatalf("seed %d: strict bounded diverges from reference on the re-seed fixture", seed)
		}
	}
	// All-duplicates input: every non-first cluster is empty after each
	// sweep, so the re-seed path runs on every iteration and must still
	// terminate with a valid assignment.
	dup := make([][]float64, 6)
	for i := range dup {
		dup[i] = []float64{7, 7, 7}
	}
	a := KMeansBounded(dup, 3, rand.New(rand.NewSource(3)), KMeansOpts{})
	if len(a.Labels) != 6 || a.K != 3 {
		t.Fatalf("duplicate-point clustering returned %d labels, K=%d", len(a.Labels), a.K)
	}
	for _, l := range a.Labels {
		if l < 0 || l >= a.K {
			t.Fatalf("label %d out of range [0,%d)", l, a.K)
		}
	}
}

// --- k-means++ seeding edge cases (shared by both implementations) ---

func TestKMeansBoundedClampsKToN(t *testing.T) {
	points := [][]float64{{0}, {1}, {2}}
	a := KMeansBounded(points, 10, rand.New(rand.NewSource(1)), KMeansOpts{})
	if a.K != 3 {
		t.Fatalf("K = %d, want clamp to 3", a.K)
	}
	seen := map[int]bool{}
	for _, l := range a.Labels {
		if seen[l] {
			t.Fatalf("k==n but two points share label %d", l)
		}
		seen[l] = true
	}
}

func TestKMeansBoundedIdenticalPointsFallbackSeeding(t *testing.T) {
	// All-identical points drive the seeding distance mass to zero, which
	// must fall back to uniform seeding (sum <= 0 branch) instead of
	// dividing by zero, in both implementations, identically.
	points := make([][]float64, 9)
	for i := range points {
		points[i] = []float64{2, 4, 8}
	}
	for seed := int64(0); seed < 10; seed++ {
		ref := KMeansReference(points, 4, rand.New(rand.NewSource(seed)), 0)
		got := KMeansBounded(points, 4, rand.New(rand.NewSource(seed)), KMeansOpts{})
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("seed %d: identical-point seeding diverges", seed)
		}
		for _, l := range got.Labels {
			if l < 0 || l >= got.K {
				t.Fatalf("label %d out of range", l)
			}
		}
	}
}

func TestKMeansBoundedZeroDimVectors(t *testing.T) {
	// Zero-dimensional points: every distance is zero. Must not panic and
	// must match the reference.
	points := make([][]float64, 5)
	for i := range points {
		points[i] = []float64{}
	}
	for seed := int64(0); seed < 10; seed++ {
		ref := KMeansReference(points, 3, rand.New(rand.NewSource(seed)), 0)
		got := KMeansBounded(points, 3, rand.New(rand.NewSource(seed)), KMeansOpts{})
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("seed %d: dim-0 clustering diverges\nref: %v\ngot: %v", seed, ref, got)
		}
	}
}

func TestKMeansBoundedEmptyAndDegenerate(t *testing.T) {
	if a := KMeansBounded(nil, 3, rand.New(rand.NewSource(1)), KMeansOpts{}); len(a.Labels) != 0 {
		t.Fatalf("empty input: labels = %v", a.Labels)
	}
	one := [][]float64{{1, 2}}
	a := KMeansBounded(one, 5, rand.New(rand.NewSource(1)), KMeansOpts{})
	if a.K != 1 || a.Labels[0] != 0 {
		t.Fatalf("single point: %+v", a)
	}
}

// --- benchmarks (make bench-cluster) ---

// BenchmarkKMeans measures one clustering call on the bench fixture:
// reference (exact sweeps) vs bounded, the isolated version of the
// clustering tail inside BenchmarkPick.
func BenchmarkKMeans(b *testing.B) {
	points := benchFixture(128, 32, 42)
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			KMeansReference(points, 13, rand.New(rand.NewSource(9)), 0)
		}
	})
	b.Run("bounded", func(b *testing.B) {
		b.ReportAllocs()
		var st KMeansStats
		for i := 0; i < b.N; i++ {
			st = KMeansStats{}
			KMeansBounded(points, 13, rand.New(rand.NewSource(9)), KMeansOpts{Parallelism: 1, Stats: &st})
		}
		b.ReportMetric(st.SkippedFrac(), "skipped-dist-frac")
	})
}
