package cluster

import (
	"math/rand"
	"slices"
)

// Exemplar is one selected representative: the index of the chosen point and
// the weight it carries (its cluster's size, §4.2).
type Exemplar struct {
	Point  int
	Weight float64
}

// medianVector computes the coordinate-wise median of the given points into
// med, using col (len ≥ len(members)) as sorting scratch.
func medianVector(points [][]float64, members []int, med, col []float64) {
	for j := range med {
		c := col[:len(members)]
		for i, m := range members {
			c[i] = points[m][j]
		}
		slices.Sort(c)
		n := len(c)
		if n%2 == 1 {
			med[j] = c[n/2]
		} else {
			med[j] = (c[n/2-1] + c[n/2]) / 2
		}
	}
}

// MedianExemplars picks, for each cluster, the member closest to the
// cluster's median feature vector — the paper's (biased, zero-variance)
// estimator. Weights equal cluster sizes. Cluster membership is gathered by
// a counting pass into one backing array, and the median/sort scratch is
// shared across clusters, so the only retained allocation is the result.
func MedianExemplars(points [][]float64, a Assignment) []Exemplar {
	n := len(a.Labels)
	if n == 0 {
		return nil
	}
	// Counting-sort members by cluster: starts[c] marks each cluster's
	// segment in the shared index array.
	counts := make([]int, a.K+1)
	for _, l := range a.Labels {
		counts[l+1]++
	}
	for c := 1; c <= a.K; c++ {
		counts[c] += counts[c-1]
	}
	idx := make([]int, n)
	next := make([]int, a.K)
	for i, l := range a.Labels {
		idx[counts[l]+next[l]] = i
		next[l]++
	}
	dim := len(points[0])
	scratch := make([]float64, dim+n)
	med, col := scratch[:dim], scratch[dim:]
	out := make([]Exemplar, 0, a.K)
	for c := 0; c < a.K; c++ {
		members := idx[counts[c]:counts[c+1]]
		if len(members) == 0 {
			continue
		}
		medianVector(points, members, med, col)
		best, bestD := members[0], sqDist(points[members[0]], med)
		for _, m := range members[1:] {
			if d := sqDistBounded(points[m], med, bestD); d < bestD {
				best, bestD = m, d
			}
		}
		out = append(out, Exemplar{Point: best, Weight: float64(len(members))})
	}
	return out
}

// RandomExemplars picks a uniformly random member per cluster — the unbiased
// estimator of Appendix D, analyzed as stratified SRSWoR with one draw per
// stratum.
func RandomExemplars(points [][]float64, a Assignment, rng *rand.Rand) []Exemplar {
	var out []Exemplar
	for _, members := range a.Members() {
		if len(members) == 0 {
			continue
		}
		pick := members[rng.Intn(len(members))]
		out = append(out, Exemplar{Point: pick, Weight: float64(len(members))})
	}
	return out
}
