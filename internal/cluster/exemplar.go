package cluster

import (
	"math/rand"
	"sort"
)

// Exemplar is one selected representative: the index of the chosen point and
// the weight it carries (its cluster's size, §4.2).
type Exemplar struct {
	Point  int
	Weight float64
}

// medianVector computes the coordinate-wise median of the given points.
func medianVector(points [][]float64, members []int) []float64 {
	if len(members) == 0 {
		return nil
	}
	dim := len(points[members[0]])
	med := make([]float64, dim)
	col := make([]float64, len(members))
	for j := 0; j < dim; j++ {
		for i, m := range members {
			col[i] = points[m][j]
		}
		sort.Float64s(col)
		n := len(col)
		if n%2 == 1 {
			med[j] = col[n/2]
		} else {
			med[j] = (col[n/2-1] + col[n/2]) / 2
		}
	}
	return med
}

// MedianExemplars picks, for each cluster, the member closest to the
// cluster's median feature vector — the paper's (biased, zero-variance)
// estimator. Weights equal cluster sizes.
func MedianExemplars(points [][]float64, a Assignment) []Exemplar {
	var out []Exemplar
	for _, members := range a.Members() {
		if len(members) == 0 {
			continue
		}
		med := medianVector(points, members)
		best, bestD := members[0], sqDist(points[members[0]], med)
		for _, m := range members[1:] {
			if d := sqDistBounded(points[m], med, bestD); d < bestD {
				best, bestD = m, d
			}
		}
		out = append(out, Exemplar{Point: best, Weight: float64(len(members))})
	}
	return out
}

// RandomExemplars picks a uniformly random member per cluster — the unbiased
// estimator of Appendix D, analyzed as stratified SRSWoR with one draw per
// stratum.
func RandomExemplars(points [][]float64, a Assignment, rng *rand.Rand) []Exemplar {
	var out []Exemplar
	for _, members := range a.Members() {
		if len(members) == 0 {
			continue
		}
		pick := members[rng.Intn(len(members))]
		out = append(out, Exemplar{Point: pick, Weight: float64(len(members))})
	}
	return out
}
