package cluster

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"ps3/internal/exec"
)

// KMeansOpts configures the bounded k-means production path.
type KMeansOpts struct {
	// MaxIter bounds Lloyd iterations (0 = 25, the reference default).
	MaxIter int
	// Parallelism bounds the worker goroutines of each assignment sweep
	// (0 = GOMAXPROCS). Labels are bit-identical at every setting: points
	// write only their own label/bound slots and read centers that are
	// immutable for the duration of a sweep.
	Parallelism int
	// Strict disables triangle-inequality pruning: every point scans every
	// center each iteration with exactly the reference's comparison
	// sequence, so the result is bit-identical to KMeansReference by
	// construction. The equivalence suite uses it to prove the flat center
	// storage, the parallel sweep and the shared center update introduce no
	// divergence of their own; serving always runs the default (pruned)
	// mode.
	Strict bool
	// Stats, when non-nil, accumulates the assignment sweeps' work counters.
	Stats *KMeansStats
}

// KMeansStats counts the assignment sweeps' distance work. Seeding and
// center updates are identical between the bounded and reference paths and
// are not counted.
type KMeansStats struct {
	// Iterations is the number of Lloyd iterations run.
	Iterations int
	// PointDists is the number of point↔center distance evaluations the
	// assignment sweeps performed: the initial full sweep counts k per
	// point, a bound tightening or candidate check counts 1, a pruned
	// center counts 0.
	PointDists int64
	// PossibleDists is what the unbounded reference sweep computes: n×k
	// per iteration.
	PossibleDists int64
}

// SkippedFrac is the fraction of the reference sweep's distance
// computations the bounds eliminated.
func (s *KMeansStats) SkippedFrac() float64 {
	if s.PossibleDists == 0 {
		return 0
	}
	return 1 - float64(s.PointDists)/float64(s.PossibleDists)
}

// add merges the counters of one KMeansBounded run (s accumulates across
// runs, e.g. the per-group clusterings of one pick).
func (s *KMeansStats) add(o KMeansStats) {
	s.Iterations += o.Iterations
	s.PointDists += o.PointDists
	s.PossibleDists += o.PossibleDists
}

// kmScratch is the pooled per-run working set of KMeansBounded: flat
// row-major center storage (current and previous positions), per-center
// member counts and movement deltas, the inter-center half-distance matrix,
// and the per-point upper bound plus per-point×center lower bound matrix.
type kmScratch struct {
	flat    []float64   // k*dim current centers, row-major
	old     []float64   // k*dim previous centers (movement deltas)
	views   [][]float64 // row views into flat
	oldView [][]float64 // row views into old
	counts  []int
	move    []float64 // per-center movement since last sweep
	ccHalf  []float64 // k*k: half inter-center distances, row-major
	half    []float64 // s(c): min over ccHalf row c
	ub      []float64 // per-point upper bound on d(p, center[label])
	lb      []float64 // n*k lower bounds on d(p, center[c]), row-major
	d2      []float64 // seeding scratch
}

var kmPool sync.Pool

func getKMScratch(n, k, dim int) *kmScratch {
	sc, _ := kmPool.Get().(*kmScratch)
	if sc == nil {
		sc = &kmScratch{}
	}
	if cap(sc.flat) < k*dim {
		sc.flat = make([]float64, k*dim)
		sc.old = make([]float64, k*dim)
	}
	sc.flat = sc.flat[:k*dim]
	sc.old = sc.old[:k*dim]
	if cap(sc.views) < k {
		sc.views = make([][]float64, k)
		sc.oldView = make([][]float64, k)
		sc.counts = make([]int, k)
		sc.move = make([]float64, k)
		sc.half = make([]float64, k)
	}
	sc.views = sc.views[:k]
	sc.oldView = sc.oldView[:k]
	sc.counts = sc.counts[:k]
	sc.move = sc.move[:k]
	sc.half = sc.half[:k]
	if cap(sc.ccHalf) < k*k {
		sc.ccHalf = make([]float64, k*k)
	}
	sc.ccHalf = sc.ccHalf[:k*k]
	for c := 0; c < k; c++ {
		sc.views[c] = sc.flat[c*dim : (c+1)*dim : (c+1)*dim]
		sc.oldView[c] = sc.old[c*dim : (c+1)*dim : (c+1)*dim]
	}
	if cap(sc.ub) < n {
		sc.ub = make([]float64, n)
		sc.d2 = make([]float64, n)
	}
	sc.ub = sc.ub[:n]
	sc.d2 = sc.d2[:n]
	if cap(sc.lb) < n*k {
		sc.lb = make([]float64, n*k)
	}
	sc.lb = sc.lb[:n*k]
	return sc
}

func putKMScratch(sc *kmScratch) { kmPool.Put(sc) }

// kmBlock is the point-block granularity of the parallel assignment sweep.
const kmBlock = 64

// KMeansBounded is Lloyd k-means with k-means++ seeding and Elkan-style
// triangle-inequality pruning: each point carries an upper bound on the
// distance to its assigned center and one lower bound per center,
// maintained across iterations by the centers' movement deltas, and each
// center pair carries half its separation. A candidate center whose lower
// bound (or half-distance to the assigned center) exceeds the upper bound
// provably cannot win, so the sweep never computes its distance; a point
// whose upper bound is below half the distance to its assigned center's
// nearest peer skips the sweep entirely.
//
// Divergence contract vs KMeansReference: the initial sweep is the
// reference's scan verbatim (ascending centers, strict-< tie-break,
// bit-exact early abandoning — whose partial sums are banked as initial
// lower bounds), and later sweeps compute exact squared distances for
// every candidate the bounds cannot eliminate, pruning strictly (an exact
// tie is computed, never skipped) and breaking ties toward the lower
// center index like the reference's ascending scan. Labels — and with
// them the shared center-update trajectory — are therefore identical
// whenever distance comparisons are decided by exact arithmetic,
// including exact ties (duplicate points). The one residual divergence:
// bound maintenance adds/subtracts movement deltas in floating point,
// which can overstate a lower bound (or understate the upper bound) by a
// few ulps and prune a candidate that is closer by less than that — a
// nearest-center near-tie at rounding scale. Strict mode
// (KMeansOpts.Strict) disables pruning and is bit-identical to the
// reference by construction.
func KMeansBounded(points [][]float64, k int, rng *rand.Rand, o KMeansOpts) Assignment {
	n := len(points)
	if k > n {
		k = n
	}
	if k <= 0 || n == 0 {
		return Assignment{Labels: make([]int, n), K: max(k, 1)}
	}
	maxIter := o.MaxIter
	if maxIter <= 0 {
		maxIter = 25
	}
	dim := len(points[0])

	sc := getKMScratch(n, k, dim)
	defer putKMScratch(sc)
	centers := sc.views

	labels := make([]int, n)
	var st KMeansStats
	eo := exec.Options{Parallelism: o.Parallelism}
	blocks := (n + kmBlock - 1) / kmBlock
	boundsValid := false

	if o.Strict {
		// Strict mode replays the reference verbatim, including its real
		// first sweep, so the seeding must not pre-assign labels.
		seedKMeansPP(points, k, rng, centers, sc.d2, nil, nil, nil)
	} else {
		// The seeding's running-min bookkeeping IS the first Lloyd sweep
		// over the final centers (see seedKMeansPP): its argmin provides
		// iteration 0's labels, its best distances the initial upper
		// bounds, and its early-abandoned partial sums the initial
		// lower-bound matrix — the bounded path never runs a full n×k
		// sweep at all.
		seedKMeansPP(points, k, rng, centers, sc.d2, labels, sc.lb, sc.half)
		for i := range sc.ub {
			sc.ub[i] = math.Sqrt(sc.d2[i])
		}
		for j := range sc.lb {
			sc.lb[j] = math.Sqrt(sc.lb[j])
		}
		boundsValid = true
	}

	for iter := 0; iter < maxIter; iter++ {
		st.Iterations++
		st.PossibleDists += int64(n) * int64(k)
		prune := !o.Strict && boundsValid
		seeded := !o.Strict && iter == 0
		var anyChanged atomic.Bool
		var dists atomic.Int64
		if seeded {
			// Iteration 0's assignment came from the seeding for free; the
			// reference's first sweep changed a label wherever the nearest
			// seed is not center 0 (labels start zeroed).
			for _, l := range labels {
				if l != 0 {
					anyChanged.Store(true)
					break
				}
			}
		}
		if prune && !seeded {
			computeHalfDists(centers, sc.ccHalf, sc.half)
		}
		if !seeded {
			exec.ForEach(blocks, eo, func(b int) {
				lo := b * kmBlock
				hi := min(lo+kmBlock, n)
				var nd int64
				changed := false
				for i := lo; i < hi; i++ {
					p := points[i]
					lbRow := sc.lb[i*k : (i+1)*k]
					if !prune {
						// Reference scan verbatim (strict mode): ascending
						// centers, strict-< tie-break, early abandon at the
						// running best.
						best, bestD := 0, math.Inf(1)
						for c := range centers {
							if d := sqDistBounded(p, centers[c], bestD); d < bestD {
								best, bestD = c, d
							}
						}
						nd += int64(k)
						if labels[i] != best {
							labels[i] = best
							changed = true
						}
						continue
					}
					// Pruning is strict (u < bound, never u ≤ bound) so an exact
					// tie is always computed rather than skipped, and switch
					// decisions compare exact squared distances with the
					// reference's lower-index-wins tie-break: the sweep resolves
					// exact nearest-center ties identically to the reference scan.
					a := labels[i]
					u := sc.ub[i]
					if u < sc.half[a] {
						continue // no other center can be closer (Elkan lemma 1)
					}
					ccRow := sc.ccHalf[a*k:]
					tight := false
					var usq float64
					for c := range centers {
						if c == a || u < lbRow[c] || u < ccRow[c] {
							continue
						}
						if !tight {
							// Pay one exact distance to the assigned center
							// before considering any switch.
							usq = sqDist(p, centers[a])
							u = math.Sqrt(usq)
							nd++
							sc.ub[i] = u
							lbRow[a] = u
							tight = true
							if u < lbRow[c] || u < ccRow[c] {
								continue
							}
						}
						dsq := sqDist(p, centers[c])
						d := math.Sqrt(dsq)
						nd++
						lbRow[c] = d
						if dsq < usq || (dsq == usq && c < a) {
							a = c
							usq = dsq
							u = d
							sc.ub[i] = d
							ccRow = sc.ccHalf[a*k:]
						}
					}
					if labels[i] != a {
						labels[i] = a
						changed = true
					}
				}
				if changed {
					anyChanged.Store(true)
				}
				dists.Add(nd)
			})
		}
		st.PointDists += dists.Load()
		changed := anyChanged.Load()
		if iter > 0 && !changed {
			// Mirrors the reference's convergence cut: a no-change sweep
			// after iteration 0 cannot leave an empty cluster (the previous
			// update reseeded any), so the center update would recompute
			// the same means bit for bit.
			break
		}

		copy(sc.old, sc.flat)
		reseeded := updateCenters(points, labels, centers, sc.counts)
		if len(reseeded) > 0 {
			changed = true
			for _, i := range reseeded {
				// The relabeled point's bounds describe its old cluster;
				// force a full recomputation next sweep.
				sc.ub[i] = math.Inf(1)
				for c := range centers {
					sc.lb[i*k+c] = 0
				}
			}
		}
		if !changed {
			break
		}
		// Propagate center movement into the bounds: the assigned center
		// moving by m can shrink its point's distance by at most m (upper
		// bound grows), and center c moving by move[c] can approach any
		// point by at most move[c] (its lower bounds shrink).
		for c := range centers {
			sc.move[c] = math.Sqrt(sqDist(sc.oldView[c], centers[c]))
		}
		for i := range labels {
			sc.ub[i] += sc.move[labels[i]]
			lbRow := sc.lb[i*k : (i+1)*k]
			for c, m := range sc.move {
				if m > 0 {
					lbRow[c] -= m
				}
			}
		}
		boundsValid = true
	}
	if o.Stats != nil {
		o.Stats.add(st)
	}
	return Assignment{Labels: labels, K: k}
}

// computeHalfDists fills ccHalf (k×k row-major) with half the pairwise
// center distances and half[c] with the row minimum over other centers
// (Elkan's s(c)): a point within s(c) of its assigned center c cannot be
// closer to any other center.
func computeHalfDists(centers [][]float64, ccHalf, half []float64) {
	k := len(centers)
	for c := range half {
		half[c] = math.Inf(1)
	}
	for a := 0; a < k; a++ {
		ccHalf[a*k+a] = 0
		for b := a + 1; b < k; b++ {
			h := 0.5 * math.Sqrt(sqDist(centers[a], centers[b]))
			ccHalf[a*k+b] = h
			ccHalf[b*k+a] = h
			if h < half[a] {
				half[a] = h
			}
			if h < half[b] {
				half[b] = h
			}
		}
	}
}
