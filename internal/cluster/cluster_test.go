package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// threeBlobs returns n points per blob around three well-separated centers in
// 2-D, plus the blob id of each point.
func threeBlobs(n int, rng *rand.Rand) (points [][]float64, blob []int) {
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	for b, c := range centers {
		for i := 0; i < n; i++ {
			points = append(points, []float64{
				c[0] + rng.NormFloat64()*0.3,
				c[1] + rng.NormFloat64()*0.3,
			})
			blob = append(blob, b)
		}
	}
	return points, blob
}

// agreesWithBlobs checks that the assignment groups points exactly by blob:
// same blob → same label, different blob → different label.
func agreesWithBlobs(t *testing.T, a Assignment, blob []int) {
	t.Helper()
	labelOfBlob := map[int]int{}
	for i, l := range a.Labels {
		b := blob[i]
		if want, ok := labelOfBlob[b]; ok {
			if l != want {
				t.Fatalf("point %d of blob %d got label %d, blob already mapped to %d", i, b, l, want)
			}
		} else {
			labelOfBlob[b] = l
		}
	}
	seen := map[int]bool{}
	for _, l := range labelOfBlob {
		if seen[l] {
			t.Fatalf("two blobs share one cluster label: %v", labelOfBlob)
		}
		seen[l] = true
	}
}

func TestKMeansRecoversSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points, blob := threeBlobs(20, rng)
	a := KMeans(points, 3, rand.New(rand.NewSource(2)), 0)
	if a.K != 3 {
		t.Fatalf("K = %d, want 3", a.K)
	}
	agreesWithBlobs(t, a, blob)
}

func TestHACWardRecoversSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points, blob := threeBlobs(15, rng)
	a := HAC(points, 3, Ward)
	if a.K != 3 {
		t.Fatalf("K = %d, want 3", a.K)
	}
	agreesWithBlobs(t, a, blob)
}

func TestHACSingleRecoversSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	points, blob := threeBlobs(15, rng)
	a := HAC(points, 3, Single)
	if a.K != 3 {
		t.Fatalf("K = %d, want 3", a.K)
	}
	agreesWithBlobs(t, a, blob)
}

func TestKMeansClampsKToN(t *testing.T) {
	points := [][]float64{{0}, {1}, {2}}
	a := KMeans(points, 10, rand.New(rand.NewSource(1)), 0)
	if a.K != 3 {
		t.Fatalf("K = %d, want clamp to 3", a.K)
	}
	// With k == n every point should sit in its own cluster.
	seen := map[int]bool{}
	for _, l := range a.Labels {
		if seen[l] {
			t.Fatalf("k==n but two points share label %d", l)
		}
		seen[l] = true
	}
}

func TestHACClampsKToN(t *testing.T) {
	points := [][]float64{{0}, {5}}
	a := HAC(points, 7, Ward)
	if a.K != 2 {
		t.Fatalf("K = %d, want 2", a.K)
	}
}

func TestKMeansEmptyInput(t *testing.T) {
	a := KMeans(nil, 3, rand.New(rand.NewSource(1)), 0)
	if len(a.Labels) != 0 {
		t.Fatalf("labels = %v, want empty", a.Labels)
	}
}

func TestHACEmptyInput(t *testing.T) {
	a := HAC(nil, 3, Single)
	if len(a.Labels) != 0 {
		t.Fatalf("labels = %v, want empty", a.Labels)
	}
}

func TestKMeansDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	points, _ := threeBlobs(10, rng)
	a := KMeans(points, 4, rand.New(rand.NewSource(9)), 0)
	b := KMeans(points, 4, rand.New(rand.NewSource(9)), 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different assignments")
	}
}

func TestHACDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	points, _ := threeBlobs(10, rng)
	a := HAC(points, 5, Ward)
	b := HAC(points, 5, Ward)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("HAC is not deterministic on identical input")
	}
}

func TestKMeansIdenticalPointsOneEffectiveCluster(t *testing.T) {
	points := make([][]float64, 8)
	for i := range points {
		points[i] = []float64{3, 3, 3}
	}
	a := KMeans(points, 2, rand.New(rand.NewSource(1)), 0)
	// All points are identical; whatever the labels, each cluster center is
	// the same point, so every member must be distance 0 from its center.
	for _, members := range a.Members() {
		for _, m := range members {
			if d := sqDist(points[m], []float64{3, 3, 3}); d != 0 {
				t.Fatalf("identical points produced nonzero distance %v", d)
			}
		}
	}
}

func TestMembersPartitionInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	points, _ := threeBlobs(9, rng)
	a := KMeans(points, 4, rand.New(rand.NewSource(8)), 0)
	total := 0
	seen := make([]bool, len(points))
	for _, members := range a.Members() {
		for _, m := range members {
			if seen[m] {
				t.Fatalf("point %d appears in two clusters", m)
			}
			seen[m] = true
			total++
		}
	}
	if total != len(points) {
		t.Fatalf("Members covered %d points, want %d", total, len(points))
	}
}

func TestLinkageString(t *testing.T) {
	if Single.String() != "single" || Ward.String() != "ward" {
		t.Fatalf("Linkage strings: %q, %q", Single.String(), Ward.String())
	}
}

// --- exemplars ---

func TestMedianExemplarsWeightsSumToN(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	points, _ := threeBlobs(12, rng)
	a := KMeans(points, 5, rand.New(rand.NewSource(11)), 0)
	exs := MedianExemplars(points, a)
	var sum float64
	for _, e := range exs {
		if e.Point < 0 || e.Point >= len(points) {
			t.Fatalf("exemplar point %d out of range", e.Point)
		}
		sum += e.Weight
	}
	if sum != float64(len(points)) {
		t.Fatalf("weights sum to %v, want %d", sum, len(points))
	}
}

func TestMedianExemplarBelongsToItsCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	points, _ := threeBlobs(10, rng)
	a := HAC(points, 3, Ward)
	exs := MedianExemplars(points, a)
	members := a.Members()
	for _, e := range exs {
		cl := a.Labels[e.Point]
		if int(e.Weight) != len(members[cl]) {
			t.Fatalf("exemplar %d weight %v != cluster size %d", e.Point, e.Weight, len(members[cl]))
		}
	}
}

func TestMedianExemplarIsClosestToMedian(t *testing.T) {
	// One cluster with a known coordinate-wise median.
	points := [][]float64{{0}, {1}, {2}, {3}, {100}}
	a := Assignment{Labels: []int{0, 0, 0, 0, 0}, K: 1}
	exs := MedianExemplars(points, a)
	if len(exs) != 1 {
		t.Fatalf("got %d exemplars, want 1", len(exs))
	}
	// Median of {0,1,2,3,100} is 2 → exemplar must be the point at 2 (index 2).
	if exs[0].Point != 2 {
		t.Fatalf("exemplar = point %d, want 2 (closest to median)", exs[0].Point)
	}
	if exs[0].Weight != 5 {
		t.Fatalf("weight = %v, want 5", exs[0].Weight)
	}
}

func TestMedianVectorEvenCount(t *testing.T) {
	points := [][]float64{{1, 10}, {3, 20}, {5, 30}, {7, 40}}
	med := make([]float64, 2)
	medianVector(points, []int{0, 1, 2, 3}, med, make([]float64, 4))
	want := []float64{4, 25}
	if !reflect.DeepEqual(med, want) {
		t.Fatalf("median = %v, want %v", med, want)
	}
}

func TestRandomExemplarsStayInCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	points, _ := threeBlobs(8, rng)
	a := KMeans(points, 4, rand.New(rand.NewSource(14)), 0)
	for trial := 0; trial < 20; trial++ {
		exs := RandomExemplars(points, a, rand.New(rand.NewSource(int64(trial))))
		var sum float64
		for _, e := range exs {
			members := a.Members()[a.Labels[e.Point]]
			found := false
			for _, m := range members {
				if m == e.Point {
					found = true
				}
			}
			if !found {
				t.Fatalf("random exemplar %d not a member of its own cluster", e.Point)
			}
			sum += e.Weight
		}
		if sum != float64(len(points)) {
			t.Fatalf("weights sum %v, want %d", sum, len(points))
		}
	}
}

func TestRandomExemplarsCoverEveryMemberEventually(t *testing.T) {
	points := [][]float64{{0}, {0.1}, {0.2}}
	a := Assignment{Labels: []int{0, 0, 0}, K: 1}
	picked := map[int]bool{}
	for s := int64(0); s < 200; s++ {
		exs := RandomExemplars(points, a, rand.New(rand.NewSource(s)))
		picked[exs[0].Point] = true
	}
	if len(picked) != 3 {
		t.Fatalf("random exemplar only ever picked %v", picked)
	}
}

// --- feature selection ---

func TestGreedyFeatureSelectionFindsHarmfulFeature(t *testing.T) {
	// Feature 2 is harmful: excluding it lowers the error. Features 0,1 help.
	eval := func(excluded map[int]bool) float64 {
		err := 1.0
		if excluded[2] {
			err -= 0.5
		}
		if excluded[0] {
			err += 0.3
		}
		if excluded[1] {
			err += 0.3
		}
		return err
	}
	got := GreedyFeatureSelection([]int{0, 1, 2}, eval, 5, rand.New(rand.NewSource(1)))
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("excluded = %v, want [2]", got)
	}
}

func TestGreedyFeatureSelectionNoImprovementKeepsAll(t *testing.T) {
	eval := func(excluded map[int]bool) float64 { return 1 + float64(len(excluded)) }
	got := GreedyFeatureSelection([]int{0, 1, 2, 3}, eval, 3, rand.New(rand.NewSource(2)))
	if len(got) != 0 {
		t.Fatalf("excluded = %v, want none (every exclusion hurts)", got)
	}
}

func TestGreedyFeatureSelectionEmptyCandidates(t *testing.T) {
	got := GreedyFeatureSelection(nil, func(map[int]bool) float64 { return 1 }, 2, rand.New(rand.NewSource(3)))
	if len(got) != 0 {
		t.Fatalf("excluded = %v, want empty", got)
	}
}

func TestGreedyFeatureSelectionEscapesBadOrderWithRestarts(t *testing.T) {
	// Excluding {0} alone hurts, excluding {1} alone helps a bit, excluding
	// {0,1} together helps the most. Greedy from some orders finds only {1};
	// restarts should still find the best reachable local optimum {1} or
	// {1,0} depending on path. We only require the result to be no worse than
	// the single best greedy outcome.
	eval := func(ex map[int]bool) float64 {
		switch {
		case ex[0] && ex[1]:
			return 0.2
		case ex[1]:
			return 0.5
		case ex[0]:
			return 1.5
		default:
			return 1.0
		}
	}
	got := GreedyFeatureSelection([]int{0, 1}, eval, 10, rand.New(rand.NewSource(4)))
	if e := eval(toSet(got)); e > 0.5 {
		t.Fatalf("feature selection landed at error %v with exclusion %v; want ≤ 0.5", e, got)
	}
}

// --- property-based tests ---

func TestKMeansAssignmentAlwaysValid(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%40) + 1
		k := int(kRaw%10) + 1
		rng := rand.New(rand.NewSource(seed))
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		}
		a := KMeans(points, k, rng, 0)
		if len(a.Labels) != n {
			return false
		}
		for _, l := range a.Labels {
			if l < 0 || l >= a.K {
				return false
			}
		}
		return a.K <= n && a.K <= k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHACAssignmentAlwaysValid(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8, ward bool) bool {
		n := int(nRaw%25) + 1
		k := int(kRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		link := Single
		if ward {
			link = Ward
		}
		a := HAC(points, k, link)
		if len(a.Labels) != n {
			return false
		}
		// Exactly min(k, n) clusters, labels dense in [0, K).
		want := k
		if n < k {
			want = n
		}
		if a.K != want {
			return false
		}
		seen := make([]bool, a.K)
		for _, l := range a.Labels {
			if l < 0 || l >= a.K {
				return false
			}
			seen[l] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExemplarWeightsAlwaysPartitionN(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%30) + 1
		k := int(kRaw%6) + 1
		rng := rand.New(rand.NewSource(seed))
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{rng.Float64() * 10}
		}
		a := KMeans(points, k, rng, 0)
		exs := MedianExemplars(points, a)
		var sum float64
		for _, e := range exs {
			if e.Weight < 1 {
				return false
			}
			sum += e.Weight
		}
		return sum == float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansLloydNeverIncreasesSSE(t *testing.T) {
	// The final assignment's SSE must be no worse than assigning every point
	// to a single global mean when k > 1 and the data has spread.
	rng := rand.New(rand.NewSource(20))
	points, _ := threeBlobs(20, rng)
	a := KMeans(points, 3, rand.New(rand.NewSource(21)), 0)
	sse := assignmentSSE(points, a)
	one := KMeans(points, 1, rand.New(rand.NewSource(22)), 0)
	sse1 := assignmentSSE(points, one)
	if sse >= sse1 {
		t.Fatalf("k=3 SSE %v not below k=1 SSE %v on separable blobs", sse, sse1)
	}
}

func assignmentSSE(points [][]float64, a Assignment) float64 {
	var total float64
	for _, members := range a.Members() {
		if len(members) == 0 {
			continue
		}
		dim := len(points[members[0]])
		mean := make([]float64, dim)
		for _, m := range members {
			for j, v := range points[m] {
				mean[j] += v
			}
		}
		for j := range mean {
			mean[j] /= float64(len(members))
		}
		for _, m := range members {
			total += sqDist(points[m], mean)
		}
	}
	return total
}

func TestHACWardMatchesKMeansQualityOnBlobs(t *testing.T) {
	// The paper's Table 6 finding: ward ≈ kmeans on clusterable data. Both
	// should recover near-zero SSE on tight separable blobs.
	rng := rand.New(rand.NewSource(30))
	points, _ := threeBlobs(15, rng)
	km := assignmentSSE(points, KMeans(points, 3, rand.New(rand.NewSource(31)), 0))
	wd := assignmentSSE(points, HAC(points, 3, Ward))
	if math.Abs(km-wd) > 1e-6 && (km > 50 || wd > 50) {
		t.Fatalf("kmeans SSE %v vs ward SSE %v; both should be tiny on separable blobs", km, wd)
	}
}
