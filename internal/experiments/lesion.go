package experiments

import (
	"fmt"
	"io"

	"ps3/internal/dataset"
	"ps3/internal/metrics"
	"ps3/internal/stats"
)

// LesionResult holds Fig 4's two panels.
type LesionResult struct {
	Dataset string
	Lesion  []Curve // PS3, w/o cluster, w/o outlier, w/o regressor
	Factor  []Curve // random, +filter, +outlier, +regressor, +cluster
}

// RunFig4 reproduces Fig 4: the lesion study (remove one component from
// PS3) and the factor analysis (add one component to random+filter) on one
// dataset (the paper uses Aria).
func RunFig4(w io.Writer, dsName string, cfg Config) (*LesionResult, error) {
	cfg = cfg.WithDefaults()
	ds, err := dataset.ByName(dsName, dataset.Config{Rows: cfg.Rows, Parts: cfg.Parts, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	env, err := NewEnv(ds, cfg)
	if err != nil {
		return nil, err
	}
	res := &LesionResult{Dataset: dsName}
	for _, m := range []Method{MethodPS3, MethodNoCluster, MethodNoOutlier, MethodNoRegressor} {
		res.Lesion = append(res.Lesion, env.ErrorCurve(m, env.TestEx))
	}
	printCurves(w, fmt.Sprintf("Fig 4 lesion [%s]", dsName), "avg relative error",
		res.Lesion, func(e metrics.Errors) float64 { return e.AvgRelErr })

	for _, m := range []Method{MethodRandom, MethodRandomFilter, MethodOnlyOutlier, MethodOnlyRegressor, MethodOnlyCluster} {
		res.Factor = append(res.Factor, env.ErrorCurve(m, env.TestEx))
	}
	printCurves(w, fmt.Sprintf("Fig 4 factor analysis [%s]", dsName), "avg relative error",
		res.Factor, func(e metrics.Errors) float64 { return e.AvgRelErr })
	return res, nil
}

// ImportanceRow is one dataset's regressor feature importance by category.
type ImportanceRow struct {
	Dataset string
	// Pct maps category name to its share of total gain (%).
	Pct map[string]float64
}

// RunFig5 reproduces Fig 5: the funnel regressors' gain-based feature
// importance aggregated into the four sketch families, per dataset.
func RunFig5(w io.Writer, cfg Config) ([]ImportanceRow, error) {
	cfg = cfg.WithDefaults()
	fmt.Fprintf(w, "\nFig 5 — regressor feature importance by category (%% of total gain)\n")
	fmt.Fprintf(w, "%-10s%14s%8s%8s%10s\n", "dataset", "selectivity", "hh", "dv", "measure")
	var rows []ImportanceRow
	for _, name := range dataset.Names() {
		ds, err := dataset.ByName(name, dataset.Config{Rows: cfg.Rows, Parts: cfg.Parts, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		env, err := NewEnv(ds, cfg)
		if err != nil {
			return nil, err
		}
		row := ImportanceRow{Dataset: name, Pct: CategoryImportance(env)}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10s%14.1f%8.1f%8.1f%10.1f\n", name,
			row.Pct["selectivity"], row.Pct["hh"], row.Pct["dv"], row.Pct["measure"])
	}
	return rows, nil
}

// CategoryImportance aggregates gain importance across all funnel models
// into the four sketch families of Fig 5, as percentages of total gain.
func CategoryImportance(env *Env) map[string]float64 {
	space := env.Sys.Stats.Space
	byCat := map[string]float64{}
	var total float64
	for _, reg := range env.Sys.Picker.Regs {
		imp := reg.Importance()
		for j, g := range imp {
			cat := stats.CategoryOf(space.Meta[j].Kind).String()
			byCat[cat] += g
			total += g
		}
	}
	if total > 0 {
		for k := range byCat { //lint:mapiter-ok independent per-key scaling in place; order-free
			byCat[k] = byCat[k] / total * 100
		}
	}
	return byCat
}
