// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated substrate: shared setup (dataset →
// statistics → workload → training), method runners for PS3 and the
// baselines, error-curve computation, and per-experiment drivers keyed by
// the artifact ids of DESIGN.md (fig3..fig12, table3..table8).
package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"ps3/internal/core"
	"ps3/internal/dataset"
	"ps3/internal/exec"
	"ps3/internal/metrics"
	"ps3/internal/picker"
	"ps3/internal/query"
)

// Config sizes an experiment environment. Zero values take laptop-scale
// defaults; cmd/ps3bench exposes flags to scale toward paper-sized runs.
type Config struct {
	Rows         int
	Parts        int
	TrainQueries int
	TestQueries  int
	// Budgets are the sampling budget fractions swept by error curves.
	Budgets []float64
	// Runs is the number of repetitions for randomized methods (paper: 10).
	Runs int
	// NoFeatureSelection disables Algorithm 3 during training (the paper
	// runs with feature selection on).
	NoFeatureSelection bool
	// Alpha / K override the picker defaults when nonzero.
	Alpha float64
	K     int
	Seed  int64
	// Parallelism bounds the worker goroutines of partition scans and
	// per-query evaluation loops (0 = GOMAXPROCS). Results are identical at
	// every setting: every per-query RNG is independently seeded and merges
	// run in deterministic order.
	Parallelism int
}

// execOpts converts the concurrency knob into engine options.
func (c Config) execOpts() exec.Options { return exec.Options{Parallelism: c.Parallelism} }

// WithDefaults fills the laptop-scale defaults.
func (c Config) WithDefaults() Config {
	if c.Rows <= 0 {
		c.Rows = 60_000
	}
	if c.Parts <= 0 {
		c.Parts = 150
	}
	if c.TrainQueries <= 0 {
		c.TrainQueries = 100
	}
	if c.TestQueries <= 0 {
		c.TestQueries = 30
	}
	if len(c.Budgets) == 0 {
		c.Budgets = []float64{0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8}
	}
	if c.Runs <= 0 {
		c.Runs = 3
	}
	return c
}

// Env is a fully prepared experiment environment: dataset, trained system,
// and cached examples (features + per-partition answers + ground truth) for
// train and test queries.
type Env struct {
	Cfg     Config
	DS      *dataset.Dataset
	Sys     *core.System
	TrainEx []picker.Example
	TestEx  []picker.Example
}

// NewEnv builds an environment on the dataset's default layout.
func NewEnv(ds *dataset.Dataset, cfg Config) (*Env, error) {
	cfg = cfg.WithDefaults()
	pcfg := picker.Config{
		Seed:               cfg.Seed + 101,
		FeatureSelection:   !cfg.NoFeatureSelection,
		FeatureSelRestarts: 3,
		Alpha:              cfg.Alpha,
		K:                  cfg.K,
	}
	sys, err := core.New(ds.Table, core.Options{
		Workload:    ds.Workload,
		Picker:      pcfg,
		TrainLSS:    true,
		LSSBudgets:  cfg.Budgets,
		Seed:        cfg.Seed + 11,
		Parallelism: cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	gen, err := query.NewGenerator(ds.Workload, ds.Table, cfg.Seed+1000)
	if err != nil {
		return nil, err
	}
	trainQs := gen.SampleN(cfg.TrainQueries)
	testQs := distinctFrom(gen, trainQs, cfg.TestQueries)

	trainEx, err := sys.MakeExamples(trainQs)
	if err != nil {
		return nil, err
	}
	if err := sys.Train(nil, trainEx); err != nil {
		return nil, err
	}
	testEx, err := sys.MakeExamples(testQs)
	if err != nil {
		return nil, err
	}
	return &Env{Cfg: cfg, DS: ds, Sys: sys, TrainEx: trainEx, TestEx: testEx}, nil
}

// distinctFrom samples n test queries that do not collide with the training
// set (§5.1.2: "no identical queries between the test and training sets").
func distinctFrom(gen *query.Generator, train []*query.Query, n int) []*query.Query {
	seen := make(map[string]bool, len(train))
	for _, q := range train {
		seen[q.String()] = true
	}
	var out []*query.Query
	for attempts := 0; len(out) < n && attempts < 50*n; attempts++ {
		q := gen.Sample()
		key := q.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, q)
	}
	return out
}

// Method identifies a selection strategy under evaluation.
type Method string

const (
	MethodRandom       Method = "random"
	MethodRandomFilter Method = "random+filter"
	MethodLSS          Method = "LSS"
	MethodPS3          Method = "PS3"
	MethodOracle       Method = "oracle"
	MethodPS3Unbiased  Method = "PS3-unbiased"
	// Lesion variants (§5.4.1).
	MethodNoCluster   Method = "w/o cluster"
	MethodNoOutlier   Method = "w/o outlier"
	MethodNoRegressor Method = "w/o regressor"
	// Factor-analysis variants: filter + exactly one component.
	MethodOnlyOutlier   Method = "+outlier"
	MethodOnlyRegressor Method = "+regressor"
	MethodOnlyCluster   Method = "+cluster"
)

// Deterministic reports whether the method needs repeated runs to average
// out sampling noise.
func (m Method) Deterministic() bool {
	switch m {
	case MethodPS3, MethodOracle, MethodNoOutlier, MethodOnlyCluster:
		// Clustering with median exemplars is deterministic up to k-means
		// seeding; we still treat it as deterministic for run counting (the
		// paper reports single-run numbers for PS3).
		return true
	}
	return false
}

// pickerVariant returns a shallow copy of the trained picker with lesion /
// estimator flags applied; the trained models are shared.
func (e *Env) pickerVariant(mutate func(*picker.Config)) *picker.Picker {
	p := *e.Sys.Picker
	cfg := p.Cfg
	mutate(&cfg)
	p.Cfg = cfg
	return &p
}

// SelectionFor produces the weighted partition selection of method m for
// example ex at an absolute budget of n partitions.
func (e *Env) SelectionFor(m Method, ex picker.Example, n int, rng *rand.Rand) []query.WeightedPartition {
	total := e.DS.Table.NumParts()
	switch m {
	case MethodRandom:
		return picker.Uniform(total, n, rng)
	case MethodRandomFilter:
		return picker.UniformFilter(e.Sys.Stats, ex.Features, n, rng)
	case MethodLSS:
		return e.Sys.LSS.PickN(ex.Features, n, rng)
	case MethodPS3:
		return e.Sys.Picker.Pick(ex.Query, ex.Features, n, rng)
	case MethodPS3Unbiased:
		p := e.pickerVariant(func(c *picker.Config) { c.UnbiasedExemplar = true })
		return p.Pick(ex.Query, ex.Features, n, rng)
	case MethodOracle:
		return e.Sys.Picker.PickWithOracle(ex.Query, ex.Features, ex.Contrib, n, rng)
	case MethodNoCluster:
		p := e.pickerVariant(func(c *picker.Config) { c.DisableCluster = true })
		return p.Pick(ex.Query, ex.Features, n, rng)
	case MethodNoOutlier:
		p := e.pickerVariant(func(c *picker.Config) { c.DisableOutlier = true })
		return p.Pick(ex.Query, ex.Features, n, rng)
	case MethodNoRegressor:
		p := e.pickerVariant(func(c *picker.Config) { c.DisableRegressor = true })
		return p.Pick(ex.Query, ex.Features, n, rng)
	case MethodOnlyOutlier:
		p := e.pickerVariant(func(c *picker.Config) {
			c.DisableCluster = true
			c.DisableRegressor = true
		})
		return p.Pick(ex.Query, ex.Features, n, rng)
	case MethodOnlyRegressor:
		p := e.pickerVariant(func(c *picker.Config) {
			c.DisableCluster = true
			c.DisableOutlier = true
		})
		return p.Pick(ex.Query, ex.Features, n, rng)
	case MethodOnlyCluster:
		p := e.pickerVariant(func(c *picker.Config) {
			c.DisableRegressor = true
			c.DisableOutlier = true
		})
		return p.Pick(ex.Query, ex.Features, n, rng)
	default:
		panic(fmt.Sprintf("experiments: unknown method %q", m))
	}
}

// Curve is one method's error trajectory over sampling budgets.
type Curve struct {
	Method  Method
	Budgets []float64
	Errs    []metrics.Errors
}

// AvgRelErrs extracts the average-relative-error series.
func (c Curve) AvgRelErrs() []float64 {
	out := make([]float64, len(c.Errs))
	for i, e := range c.Errs {
		out[i] = e.AvgRelErr
	}
	return out
}

// ErrorCurve evaluates method m over the environment's test examples at
// every budget, averaging randomized methods over Cfg.Runs repetitions.
func (e *Env) ErrorCurve(m Method, examples []picker.Example) Curve {
	return e.CurveFor(m, m.Deterministic(), examples,
		func(ex picker.Example, n int, rng *rand.Rand) []query.WeightedPartition {
			return e.SelectionFor(m, ex, n, rng)
		})
}

// CurveFor evaluates an arbitrary selection function over examples at every
// budget; randomized selectors are averaged over Cfg.Runs repetitions.
// Queries are evaluated in parallel on the shared scan engine — each
// (query, run) pair seeds its own RNG and per-query results merge in query
// order, so curves are identical to a sequential evaluation.
func (e *Env) CurveFor(name Method, deterministic bool, examples []picker.Example,
	selFn func(ex picker.Example, n int, rng *rand.Rand) []query.WeightedPartition) Curve {
	runs := e.Cfg.Runs
	if deterministic {
		runs = 1
	}
	total := e.DS.Table.NumParts()
	curve := Curve{Method: name, Budgets: e.Cfg.Budgets}
	type queryErrs struct {
		errs metrics.Errors
		ok   bool
	}
	for _, b := range e.Cfg.Budgets {
		n := budgetParts(b, total)
		per := exec.Map(len(examples), e.Cfg.execOpts(), func(qi int) queryErrs {
			ex := examples[qi]
			if len(ex.TruthVals) == 0 {
				return queryErrs{}
			}
			var acc metrics.Errors
			for r := 0; r < runs; r++ {
				rng := rand.New(rand.NewSource(e.Cfg.Seed + int64(qi*1009+r*31)))
				sel := selFn(ex, n, rng)
				est := picker.EstimateFromPerPart(ex.Compiled, ex.PerPart, sel)
				er := metrics.Compare(ex.TruthVals, est)
				acc.MissedGroups += er.MissedGroups
				acc.AvgRelErr += er.AvgRelErr
				acc.AbsOverTrue += er.AbsOverTrue
			}
			acc.MissedGroups /= float64(runs)
			acc.AvgRelErr /= float64(runs)
			acc.AbsOverTrue /= float64(runs)
			return queryErrs{errs: acc, ok: true}
		})
		var perQuery []metrics.Errors
		for _, qe := range per {
			if qe.ok {
				perQuery = append(perQuery, qe.errs)
			}
		}
		curve.Errs = append(curve.Errs, metrics.Mean(perQuery))
	}
	return curve
}

func budgetParts(frac float64, total int) int {
	n := int(frac*float64(total) + 0.5)
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	return n
}

// DataReadReduction estimates how much less data `better` reads to match
// `base`'s error at the given budget: it takes base's error at fromBudget
// and finds (by linear interpolation) the smallest budget where better
// achieves it, returning fromBudget / thatBudget. Mirrors the paper's
// "2.7×–70× reduction in data read" headline.
func DataReadReduction(better, base Curve, fromBudget float64) float64 {
	baseErr := math.NaN()
	for i, b := range base.Budgets {
		if b == fromBudget {
			baseErr = base.Errs[i].AvgRelErr
		}
	}
	if math.IsNaN(baseErr) {
		return math.NaN()
	}
	// Find first crossing of better's curve below baseErr.
	prevB, prevE := 0.0, math.Inf(1)
	for i, b := range better.Budgets {
		e := better.Errs[i].AvgRelErr
		if e <= baseErr {
			if prevE == math.Inf(1) || prevE == e {
				return fromBudget / b
			}
			// Interpolate between (prevB, prevE) and (b, e).
			t := (prevE - baseErr) / (prevE - e)
			cross := prevB + t*(b-prevB)
			if cross <= 0 {
				cross = b
			}
			return fromBudget / cross
		}
		prevB, prevE = b, e
	}
	return 1
}

// printCurves renders curves as an aligned text table, one row per budget.
func printCurves(w io.Writer, title, metric string, curves []Curve, pick func(metrics.Errors) float64) {
	fmt.Fprintf(w, "\n%s — %s\n", title, metric)
	fmt.Fprintf(w, "%-10s", "budget")
	for _, c := range curves {
		fmt.Fprintf(w, "%16s", c.Method)
	}
	fmt.Fprintln(w)
	for i, b := range curves[0].Budgets {
		fmt.Fprintf(w, "%-10.2f", b)
		for _, c := range curves {
			fmt.Fprintf(w, "%16.4f", pick(c.Errs[i]))
		}
		fmt.Fprintln(w)
	}
}
