package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"ps3/internal/dataset"
	"ps3/internal/metrics"
	"ps3/internal/picker"
)

// GeneralizationResult holds Fig 9 / Fig 11: per-template error curves for
// PS3 (trained only on the random workload) vs random+filter on unseen
// TPC-H template queries.
type GeneralizationResult struct {
	// PerTemplate maps template name to its two curves
	// (random+filter, PS3).
	PerTemplate map[string][]Curve
	// Average / Worst / Best are the aggregate panels of Fig 9, selected by
	// area under the PS3 error curve.
	Average, Worst, Best []Curve
	WorstName, BestName  string
}

// RunFig9 reproduces Fig 9 and Fig 11: train PS3 on the random TPCH*
// workload, then evaluate on instantiations of the ten TPC-H templates.
func RunFig9(w io.Writer, cfg Config, perTemplate int) (*GeneralizationResult, error) {
	cfg = cfg.WithDefaults()
	if perTemplate <= 0 {
		perTemplate = 5 // paper: 20 instantiations per template
	}
	ds, err := dataset.TPCHStar(dataset.Config{Rows: cfg.Rows, Parts: cfg.Parts, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	env, err := NewEnv(ds, cfg)
	if err != nil {
		return nil, err
	}

	res := &GeneralizationResult{PerTemplate: map[string][]Curve{}}
	rng := rand.New(rand.NewSource(cfg.Seed + 4242))
	type tmplCurves struct {
		name   string
		curves []Curve
		auc    float64
	}
	var all []tmplCurves
	for _, tmpl := range dataset.TPCHTemplates() {
		var examples []picker.Example
		for i := 0; i < perTemplate; i++ {
			q := tmpl.Instantiate(rng)
			ex, err := env.Sys.MakeExample(q)
			if err != nil {
				return nil, fmt.Errorf("fig9 %s: %w", tmpl.Name, err)
			}
			if len(ex.TruthVals) == 0 {
				continue // unlucky parameters selected zero rows
			}
			examples = append(examples, ex)
		}
		if len(examples) == 0 {
			fmt.Fprintf(w, "\nFig 9/11 [%s]: all instantiations empty, skipped\n", tmpl.Name)
			continue
		}
		curves := []Curve{
			env.ErrorCurve(MethodRandomFilter, examples),
			env.ErrorCurve(MethodPS3, examples),
		}
		res.PerTemplate[tmpl.Name] = curves
		printCurves(w, fmt.Sprintf("Fig 11 [tpch template %s, %d instances]", tmpl.Name, len(examples)),
			"avg relative error", curves, func(e metrics.Errors) float64 { return e.AvgRelErr })
		all = append(all, tmplCurves{tmpl.Name, curves,
			metrics.AUC(curves[1].Budgets, curves[1].AvgRelErrs())})
	}
	if len(all) == 0 {
		return res, nil
	}

	// Aggregate panels: average across templates; worst/best by PS3 AUC.
	avg := make([]Curve, 2)
	for mi := 0; mi < 2; mi++ {
		avg[mi] = Curve{Method: all[0].curves[mi].Method, Budgets: cfg.Budgets,
			Errs: make([]metrics.Errors, len(cfg.Budgets))}
		for _, tc := range all {
			for bi := range cfg.Budgets {
				avg[mi].Errs[bi].AvgRelErr += tc.curves[mi].Errs[bi].AvgRelErr / float64(len(all))
				avg[mi].Errs[bi].MissedGroups += tc.curves[mi].Errs[bi].MissedGroups / float64(len(all))
				avg[mi].Errs[bi].AbsOverTrue += tc.curves[mi].Errs[bi].AbsOverTrue / float64(len(all))
			}
		}
	}
	res.Average = avg
	worst, best := all[0], all[0]
	for _, tc := range all[1:] {
		if tc.auc > worst.auc {
			worst = tc
		}
		if tc.auc < best.auc {
			best = tc
		}
	}
	res.Worst, res.WorstName = worst.curves, worst.name
	res.Best, res.BestName = best.curves, best.name
	printCurves(w, "Fig 9 [tpch templates, average]", "avg relative error",
		res.Average, func(e metrics.Errors) float64 { return e.AvgRelErr })
	printCurves(w, fmt.Sprintf("Fig 9 [worst: %s]", res.WorstName), "avg relative error",
		res.Worst, func(e metrics.Errors) float64 { return e.AvgRelErr })
	printCurves(w, fmt.Sprintf("Fig 9 [best: %s]", res.BestName), "avg relative error",
		res.Best, func(e metrics.Errors) float64 { return e.AvgRelErr })
	return res, nil
}
