package experiments

import (
	"fmt"
	"io"
	"strings"

	"ps3/internal/dataset"
	"ps3/internal/metrics"
)

// LayoutResult holds one dataset × layout panel of Fig 6.
type LayoutResult struct {
	Dataset string
	Layout  string
	Curves  []Curve
}

// RunFig6 reproduces Fig 6: the four methods compared on the alternative
// data layouts of each dataset (the paper shows TPC-DS sorted by p_promo_sk
// and cs_net_profit, Aria by AppInfo_Version and IngestionTime, KDD by
// (service, flag) and (src_bytes, dst_bytes)).
func RunFig6(w io.Writer, cfg Config) ([]LayoutResult, error) {
	cfg = cfg.WithDefaults()
	var out []LayoutResult
	for _, name := range []string{"tpcds", "aria", "kdd"} {
		ds, err := dataset.ByName(name, dataset.Config{Rows: cfg.Rows, Parts: cfg.Parts, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		for _, layout := range ds.AltLayouts {
			alt, err := ds.WithLayout(layout)
			if err != nil {
				return nil, err
			}
			env, err := NewEnv(alt, cfg)
			if err != nil {
				return nil, fmt.Errorf("fig6 %s %v: %w", name, layout, err)
			}
			res := LayoutResult{Dataset: name, Layout: strings.Join(layout, ",")}
			for _, m := range []Method{MethodRandom, MethodRandomFilter, MethodLSS, MethodPS3} {
				res.Curves = append(res.Curves, env.ErrorCurve(m, env.TestEx))
			}
			printCurves(w, fmt.Sprintf("Fig 6 [%s sorted by %s]", name, res.Layout),
				"avg relative error", res.Curves, func(e metrics.Errors) float64 { return e.AvgRelErr })
			out = append(out, res)
		}
	}
	return out, nil
}

// Fig8Result holds one panel of Fig 8.
type Fig8Result struct {
	Layout string
	Parts  int
	Curves []Curve
}

// RunFig8 reproduces Fig 8 on the TPC-H* dataset: PS3 vs random+filter on
// (a) a random layout, (b) the L_SHIPDATE layout at the base partition
// count, and (c) the L_SHIPDATE layout with 4× as many partitions.
func RunFig8(w io.Writer, cfg Config) ([]Fig8Result, error) {
	cfg = cfg.WithDefaults()
	base, err := dataset.TPCHStar(dataset.Config{Rows: cfg.Rows, Parts: cfg.Parts, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	randomDS, err := base.WithLayout(nil)
	if err != nil {
		return nil, err
	}
	moreParts, err := base.WithPartitions(cfg.Parts * 4)
	if err != nil {
		return nil, err
	}
	panels := []struct {
		name string
		ds   *dataset.Dataset
	}{
		{"random layout", randomDS},
		{fmt.Sprintf("L_SHIPDATE, %d parts", cfg.Parts), base},
		{fmt.Sprintf("L_SHIPDATE, %d parts", cfg.Parts*4), moreParts},
	}
	var out []Fig8Result
	for _, panel := range panels {
		env, err := NewEnv(panel.ds, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig8 %s: %w", panel.name, err)
		}
		res := Fig8Result{Layout: panel.name, Parts: panel.ds.Table.NumParts()}
		for _, m := range []Method{MethodRandomFilter, MethodPS3} {
			res.Curves = append(res.Curves, env.ErrorCurve(m, env.TestEx))
		}
		printCurves(w, fmt.Sprintf("Fig 8 [tpch, %s]", panel.name), "avg relative error",
			res.Curves, func(e metrics.Errors) float64 { return e.AvgRelErr })
		out = append(out, res)
	}
	return out, nil
}

// SelectivityBucket is one selectivity range's error comparison (Fig 7).
type SelectivityBucket struct {
	Label   string
	Queries int
	Curves  []Curve
}

// RunFig7 reproduces Fig 7: error broken down by true query selectivity on
// the TPC-H* dataset, for random, random+filter and PS3.
func RunFig7(w io.Writer, cfg Config) ([]SelectivityBucket, error) {
	cfg = cfg.WithDefaults()
	// More test queries so each bucket has members.
	if cfg.TestQueries < 45 {
		cfg.TestQueries = 45
	}
	ds, err := dataset.TPCHStar(dataset.Config{Rows: cfg.Rows, Parts: cfg.Parts, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	env, err := NewEnv(ds, cfg)
	if err != nil {
		return nil, err
	}
	type bucket struct {
		label  string
		lo, hi float64
	}
	buckets := []bucket{
		{"selectivity < 0.2", 0, 0.2},
		{"0.2 <= selectivity <= 0.8", 0.2, 0.8},
		{"selectivity > 0.8", 0.8, 1.01},
	}
	var out []SelectivityBucket
	for _, b := range buckets {
		sub := env.TestEx[:0:0]
		for _, ex := range env.TestEx {
			s := ex.Compiled.Selectivity(ds.Table)
			if s >= b.lo && s < b.hi {
				sub = append(sub, ex)
			}
		}
		res := SelectivityBucket{Label: b.label, Queries: len(sub)}
		if len(sub) == 0 {
			fmt.Fprintf(w, "\nFig 7 [%s]: no test queries in bucket\n", b.label)
			out = append(out, res)
			continue
		}
		for _, m := range []Method{MethodRandom, MethodRandomFilter, MethodPS3} {
			res.Curves = append(res.Curves, env.ErrorCurve(m, sub))
		}
		printCurves(w, fmt.Sprintf("Fig 7 [tpch, %s, %d queries]", b.label, len(sub)),
			"avg relative error", res.Curves, func(e metrics.Errors) float64 { return e.AvgRelErr })
		out = append(out, res)
	}
	return out, nil
}
