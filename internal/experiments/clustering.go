package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"ps3/internal/dataset"
	"ps3/internal/metrics"
	"ps3/internal/picker"
	"ps3/internal/query"
)

// Table6Row holds one dataset's clustering-algorithm AUC comparison.
type Table6Row struct {
	Dataset                       string
	HACSingle, HACWard, KMeansAUC float64
}

// clusteringOnlyCurve evaluates pure clustering selection (funnel and
// outliers disabled) under the given algorithm.
func clusteringOnlyCurve(env *Env, algo picker.ClusterAlgo, name Method) Curve {
	variant := env.pickerVariant(func(c *picker.Config) {
		c.DisableRegressor = true
		c.DisableOutlier = true
		c.Algo = algo
	})
	return env.CurveFor(name, true, env.TestEx,
		func(ex picker.Example, n int, rng *rand.Rand) []query.WeightedPartition {
			return variant.Pick(ex.Query, ex.Features, n, rng)
		})
}

// RunTable6 reproduces Table 6: area under the avg-relative-error curve for
// HAC(single), HAC(ward) and KMeans clustering on tpcds, aria, kdd.
func RunTable6(w io.Writer, cfg Config) ([]Table6Row, error) {
	cfg = cfg.WithDefaults()
	fmt.Fprintf(w, "\nTable 6 — clustering algorithm AUC (avg rel err × 100, smaller is better)\n")
	fmt.Fprintf(w, "%-10s%14s%12s%10s\n", "dataset", "HAC(single)", "HAC(ward)", "KMeans")
	var rows []Table6Row
	for _, name := range []string{"tpcds", "aria", "kdd"} {
		ds, err := dataset.ByName(name, dataset.Config{Rows: cfg.Rows, Parts: cfg.Parts, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		env, err := NewEnv(ds, cfg)
		if err != nil {
			return nil, err
		}
		auc := func(algo picker.ClusterAlgo, label Method) float64 {
			c := clusteringOnlyCurve(env, algo, label)
			return metrics.AUC(c.Budgets, c.AvgRelErrs())
		}
		row := Table6Row{
			Dataset:   name,
			HACSingle: auc(picker.AlgoHACSingle, "hac-single"),
			HACWard:   auc(picker.AlgoHACWard, "hac-ward"),
			KMeansAUC: auc(picker.AlgoKMeans, "kmeans"),
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10s%14.2f%12.2f%10.2f\n", name, row.HACSingle, row.HACWard, row.KMeansAUC)
	}
	return rows, nil
}

// Table7Row holds one dataset's feature-selection ablation.
type Table7Row struct {
	Dataset                                    string
	WardAUC, WardFSAUC, KMeansAUC, KMeansFSAUC float64
}

// RunTable7 reproduces Table 7: the effect of Algorithm 3's feature
// selection on clustering AUC for HAC(ward) and KMeans.
func RunTable7(w io.Writer, cfg Config) ([]Table7Row, error) {
	cfg = cfg.WithDefaults()
	fmt.Fprintf(w, "\nTable 7 — feature selection effect on clustering AUC (smaller is better)\n")
	fmt.Fprintf(w, "%-10s%12s%12s%10s%12s\n", "dataset", "HAC(ward)", "+feat sel", "KMeans", "+feat sel")
	var rows []Table7Row
	for _, name := range []string{"tpcds", "aria", "kdd"} {
		ds, err := dataset.ByName(name, dataset.Config{Rows: cfg.Rows, Parts: cfg.Parts, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		// Environment without feature selection...
		noFS := cfg
		noFS.NoFeatureSelection = true
		envA, err := NewEnv(ds, noFS)
		if err != nil {
			return nil, err
		}
		// ... and with it.
		withFS := cfg
		withFS.NoFeatureSelection = false
		envB, err := NewEnv(ds, withFS)
		if err != nil {
			return nil, err
		}
		auc := func(env *Env, algo picker.ClusterAlgo, label Method) float64 {
			c := clusteringOnlyCurve(env, algo, label)
			return metrics.AUC(c.Budgets, c.AvgRelErrs())
		}
		row := Table7Row{
			Dataset:     name,
			WardAUC:     auc(envA, picker.AlgoHACWard, "ward"),
			WardFSAUC:   auc(envB, picker.AlgoHACWard, "ward+fs"),
			KMeansAUC:   auc(envA, picker.AlgoKMeans, "kmeans"),
			KMeansFSAUC: auc(envB, picker.AlgoKMeans, "kmeans+fs"),
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10s%12.2f%12.2f%10.2f%12.2f\n", name,
			row.WardAUC, row.WardFSAUC, row.KMeansAUC, row.KMeansFSAUC)
	}
	return rows, nil
}
