package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"ps3/internal/core"
	"ps3/internal/dataset"
	"ps3/internal/exec"
)

// ClusterSim models the SCOPE cluster of Table 3: W parallel workers process
// partitions whose service times are lognormally distributed (stragglers),
// so total compute scales linearly with partitions read while latency is
// sublinear.
type ClusterSim struct {
	Workers int
	// MeanSec is the mean per-partition processing time.
	MeanSec float64
	// Sigma is the lognormal shape (straggler heaviness).
	Sigma float64
	Seed  int64
}

// Run simulates processing n partitions and returns (latency, compute)
// seconds: latency is the makespan under greedy longest-processing-time
// assignment; compute is the summed service time.
func (c ClusterSim) Run(n int) (latency, compute float64) {
	rng := rand.New(rand.NewSource(c.Seed))
	mu := math.Log(c.MeanSec) - c.Sigma*c.Sigma/2
	times := make([]float64, n)
	for i := range times {
		times[i] = math.Exp(rng.NormFloat64()*c.Sigma + mu)
		compute += times[i]
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(times)))
	workers := make([]float64, c.Workers)
	for _, t := range times {
		// Assign to least-loaded worker.
		min := 0
		for wi := 1; wi < len(workers); wi++ {
			if workers[wi] < workers[min] {
				min = wi
			}
		}
		workers[min] += t
	}
	for _, load := range workers {
		if load > latency {
			latency = load
		}
	}
	return latency, compute
}

// Table3Row is one sampling rate's speedups.
type Table3Row struct {
	Budget                 float64
	LatencySpeedup         float64
	TotalComputeSpeedup    float64
	PartsRead, PartsOfFull int
}

// RunTable3 reproduces Table 3: query latency and total compute speedups at
// 1%, 5% and 10% sampling on the TPC-H* dataset under the cluster cost
// model (a fixed per-query overhead models the picker and scheduling).
func RunTable3(w io.Writer, cfg Config) ([]Table3Row, error) {
	cfg = cfg.WithDefaults()
	sim := ClusterSim{Workers: 64, MeanSec: 30, Sigma: 0.6, Seed: cfg.Seed + 5}
	total := cfg.Parts
	fullLat, fullComp := sim.Run(total)
	const overheadSec = 5 // picker + plan overhead per query

	fmt.Fprintf(w, "\nTable 3 [cluster sim: %d workers, %d partitions, lognormal stragglers]\n", sim.Workers, total)
	fmt.Fprintf(w, "%-10s%20s%24s\n", "budget", "latency speedup", "total compute speedup")
	var rows []Table3Row
	for _, b := range []float64{0.01, 0.05, 0.10} {
		n := budgetParts(b, total)
		lat, comp := sim.Run(n)
		row := Table3Row{
			Budget:              b,
			LatencySpeedup:      fullLat / (lat + overheadSec),
			TotalComputeSpeedup: fullComp / (comp + overheadSec),
			PartsRead:           n,
			PartsOfFull:         total,
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10.2f%19.1f×%23.1f×\n", b, row.LatencySpeedup, row.TotalComputeSpeedup)
	}
	return rows, nil
}

// Table4Row is one dataset's per-partition statistics storage in KB.
type Table4Row struct {
	Dataset                             string
	Total, Histogram, HH, AKMV, Measure float64
}

// RunTable4 reproduces Table 4: average per-partition storage of the
// summary statistics, broken down by sketch family.
func RunTable4(w io.Writer, cfg Config) ([]Table4Row, error) {
	cfg = cfg.WithDefaults()
	fmt.Fprintf(w, "\nTable 4 — per-partition statistics storage (KB)\n")
	fmt.Fprintf(w, "%-10s%10s%12s%8s%8s%10s\n", "dataset", "total", "histogram", "hh", "akmv", "measure")
	var rows []Table4Row
	for _, name := range dataset.Names() {
		ds, err := dataset.ByName(name, dataset.Config{Rows: cfg.Rows, Parts: cfg.Parts, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		env, err := NewEnvStatsOnly(ds, cfg)
		if err != nil {
			return nil, err
		}
		b := env.Sys.Stats.Sizes()
		kb := func(x float64) float64 { return x / 1024 }
		row := Table4Row{Dataset: name, Total: kb(b.Total), Histogram: kb(b.Histogram),
			HH: kb(b.HH), AKMV: kb(b.AKMV), Measure: kb(b.Measure)}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10s%10.2f%12.2f%8.2f%8.2f%10.2f\n",
			row.Dataset, row.Total, row.Histogram, row.HH, row.AKMV, row.Measure)
	}
	return rows, nil
}

// Table5Row is one dataset's picker overhead.
type Table5Row struct {
	Dataset            string
	TotalMS, ClusterMS float64
	Parts, FeatureDim  int
}

// RunTable5 reproduces Table 5: picker latency (total and the clustering
// share), averaged across test queries and budgets. It measures the
// production pick path — PickBatch with featurization included — at
// Parallelism=1, so the numbers are end-to-end per-query pick overhead
// rather than the latency of scoring a prebuilt feature matrix.
func RunTable5(w io.Writer, cfg Config) ([]Table5Row, error) {
	cfg = cfg.WithDefaults()
	fmt.Fprintf(w, "\nTable 5 — picker overhead (ms, avg across budgets)\n")
	fmt.Fprintf(w, "%-10s%12s%14s%8s%8s\n", "dataset", "total", "clustering", "parts", "dim")
	var rows []Table5Row
	for _, name := range dataset.Names() {
		ds, err := dataset.ByName(name, dataset.Config{Rows: cfg.Rows, Parts: cfg.Parts, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		env, err := NewEnv(ds, cfg)
		if err != nil {
			return nil, err
		}
		var totalD, clusterD time.Duration
		count := 0
		for _, b := range cfg.Budgets {
			n := budgetParts(b, ds.Table.NumParts())
			for qi, ex := range env.TestEx {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(qi)))
				_, st := env.Sys.Picker.PickBatchWithStats(ex.Query, n, rng, exec.Options{Parallelism: 1})
				totalD += st.Total
				clusterD += st.Cluster
				count++
			}
		}
		row := Table5Row{
			Dataset:    name,
			TotalMS:    float64(totalD.Microseconds()) / 1000 / float64(count),
			ClusterMS:  float64(clusterD.Microseconds()) / 1000 / float64(count),
			Parts:      ds.Table.NumParts(),
			FeatureDim: env.Sys.Stats.Space.Dim(),
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10s%12.2f%14.2f%8d%8d\n", row.Dataset, row.TotalMS, row.ClusterMS, row.Parts, row.FeatureDim)
	}
	return rows, nil
}

// Table8Row is one dataset's swept LSS strata sizes.
type Table8Row struct {
	Dataset string
	// SizeByBudget maps budget percent to the selected stratum size.
	SizeByBudget map[int]int
}

// RunTable8 reproduces Table 8: the strata sizes the LSS sweep selects per
// sampling budget.
func RunTable8(w io.Writer, cfg Config) ([]Table8Row, error) {
	cfg = cfg.WithDefaults()
	fmt.Fprintf(w, "\nTable 8 — LSS strata sizes selected by exhaustive sweep\n")
	fmt.Fprintf(w, "%-10s", "dataset")
	for _, b := range cfg.Budgets {
		fmt.Fprintf(w, "%8.0f%%", b*100)
	}
	fmt.Fprintln(w)
	var rows []Table8Row
	for _, name := range dataset.Names() {
		ds, err := dataset.ByName(name, dataset.Config{Rows: cfg.Rows, Parts: cfg.Parts, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		env, err := NewEnv(ds, cfg)
		if err != nil {
			return nil, err
		}
		row := Table8Row{Dataset: name, SizeByBudget: map[int]int{}}
		fmt.Fprintf(w, "%-10s", name)
		for _, b := range cfg.Budgets {
			size := env.Sys.LSS.StrataSize[int(math.Round(b*100))]
			row.SizeByBudget[int(math.Round(b*100))] = size
			fmt.Fprintf(w, "%9d", size)
		}
		fmt.Fprintln(w)
		rows = append(rows, row)
	}
	return rows, nil
}

// NewEnvStatsOnly builds stats without training (for storage-only
// experiments).
func NewEnvStatsOnly(ds *dataset.Dataset, cfg Config) (*Env, error) {
	cfg = cfg.WithDefaults()
	sys, err := core.New(ds.Table, core.Options{Workload: ds.Workload, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return &Env{Cfg: cfg, DS: ds, Sys: sys}, nil
}
