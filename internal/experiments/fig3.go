package experiments

import (
	"bytes"
	"fmt"
	"io"

	"ps3/internal/dataset"
	"ps3/internal/exec"
	"ps3/internal/metrics"
)

// Fig3Result holds the macro-benchmark curves for one dataset.
type Fig3Result struct {
	Dataset string
	Curves  []Curve
	// ReductionVsRandom etc. report the data-read reduction for PS3 to
	// match each baseline's error at the smallest budget (paper headline).
	ReductionVsRandom, ReductionVsFilter, ReductionVsLSS float64
}

// RunFig3 reproduces Fig 3: error vs sampling budget for
// {random, random+filter, LSS, PS3} × 3 error metrics on one dataset.
func RunFig3(w io.Writer, dsName string, cfg Config) (*Fig3Result, error) {
	ds, err := dataset.ByName(dsName, dataset.Config{Rows: cfg.WithDefaults().Rows,
		Parts: cfg.WithDefaults().Parts, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	env, err := NewEnv(ds, cfg)
	if err != nil {
		return nil, err
	}
	return fig3OnEnv(w, env)
}

func fig3OnEnv(w io.Writer, env *Env) (*Fig3Result, error) {
	methods := []Method{MethodRandom, MethodRandomFilter, MethodLSS, MethodPS3}
	res := &Fig3Result{Dataset: env.DS.Name}
	for _, m := range methods {
		res.Curves = append(res.Curves, env.ErrorCurve(m, env.TestEx))
	}
	title := fmt.Sprintf("Fig 3 [%s, %d rows, %d parts, layout %v]",
		env.DS.Name, env.DS.Table.NumRows(), env.DS.Table.NumParts(), env.DS.SortCols)
	printCurves(w, title, "missed groups", res.Curves, func(e metrics.Errors) float64 { return e.MissedGroups })
	printCurves(w, title, "avg relative error", res.Curves, func(e metrics.Errors) float64 { return e.AvgRelErr })
	printCurves(w, title, "abs error over true", res.Curves, func(e metrics.Errors) float64 { return e.AbsOverTrue })

	ps3 := res.Curves[3]
	b0 := env.Cfg.Budgets[1] // compare at the second-smallest budget for stability
	res.ReductionVsRandom = DataReadReduction(ps3, res.Curves[0], b0)
	res.ReductionVsFilter = DataReadReduction(ps3, res.Curves[1], b0)
	res.ReductionVsLSS = DataReadReduction(ps3, res.Curves[2], b0)
	fmt.Fprintf(w, "\ndata-read reduction for PS3 to match error at %.0f%% budget: vs random %.1f×, vs random+filter %.1f×, vs LSS %.1f×\n",
		b0*100, res.ReductionVsRandom, res.ReductionVsFilter, res.ReductionVsLSS)
	return res, nil
}

// RunFig3All runs the macro-benchmark on all four datasets. Datasets are
// independent environments, so they run in parallel on the scan engine;
// each buffers its report and the buffers are flushed in dataset order.
// On error, the reports of the datasets before the failing one are still
// written, matching the old sequential behavior.
func RunFig3All(w io.Writer, cfg Config) ([]*Fig3Result, error) {
	names := dataset.Names()
	type dsOut struct {
		res *Fig3Result
		err error
		buf bytes.Buffer
	}
	outs := exec.Map(len(names), cfg.execOpts(), func(i int) *dsOut {
		// Inner scans stay sequential: the dataset fan-out owns the pool.
		inner := cfg
		inner.Parallelism = 1
		o := &dsOut{}
		o.res, o.err = RunFig3(&o.buf, names[i], inner)
		return o
	})
	out := make([]*Fig3Result, 0, len(outs))
	for i, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("fig3 %s: %w", names[i], o.err)
		}
		if _, err := w.Write(o.buf.Bytes()); err != nil {
			return nil, err
		}
		out = append(out, o.res)
	}
	return out, nil
}
