package experiments

import (
	"io"
	"math"
	"strings"
	"testing"

	"ps3/internal/dataset"
	"ps3/internal/metrics"
)

// tinyCfg keeps experiment smoke tests fast: the point is exercising every
// driver end-to-end, not statistical power.
func tinyCfg() Config {
	return Config{
		Rows:         2_000,
		Parts:        20,
		TrainQueries: 12,
		TestQueries:  4,
		Budgets:      []float64{0.1, 0.3, 0.6},
		Runs:         1,
		Seed:         7,
	}
}

func tinyEnv(t *testing.T, ds string) *Env {
	t.Helper()
	d, err := dataset.ByName(ds, dataset.Config{Rows: 2_000, Parts: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(d, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Rows <= 0 || c.Parts <= 0 || c.TrainQueries <= 0 || c.TestQueries <= 0 ||
		len(c.Budgets) == 0 || c.Runs <= 0 {
		t.Fatalf("defaults incomplete: %+v", c)
	}
}

func TestNewEnvTrainsSystem(t *testing.T) {
	env := tinyEnv(t, "aria")
	if env.Sys.Picker == nil {
		t.Fatal("environment picker not trained")
	}
	if env.Sys.LSS == nil {
		t.Fatal("LSS baseline not trained")
	}
	if len(env.TrainEx) != 12 {
		t.Fatalf("%d train examples, want 12", len(env.TrainEx))
	}
	if len(env.TestEx) != 4 {
		t.Fatalf("%d test examples, want 4", len(env.TestEx))
	}
	// Train/test query disjointness (§5.1.2).
	seen := map[string]bool{}
	for _, ex := range env.TrainEx {
		seen[ex.Query.String()] = true
	}
	for _, ex := range env.TestEx {
		if seen[ex.Query.String()] {
			t.Fatalf("test query %q appears in training set", ex.Query)
		}
	}
}

func TestErrorCurvesForAllMethods(t *testing.T) {
	env := tinyEnv(t, "kdd")
	for _, m := range []Method{
		MethodRandom, MethodRandomFilter, MethodLSS, MethodPS3,
		MethodPS3Unbiased, MethodOracle,
		MethodNoCluster, MethodNoOutlier, MethodNoRegressor,
		MethodOnlyOutlier, MethodOnlyRegressor, MethodOnlyCluster,
	} {
		c := env.ErrorCurve(m, env.TestEx)
		if len(c.Errs) != len(env.Cfg.Budgets) {
			t.Fatalf("%s: %d error points for %d budgets", m, len(c.Errs), len(env.Cfg.Budgets))
		}
		for i, e := range c.Errs {
			if math.IsNaN(e.AvgRelErr) || e.AvgRelErr < 0 || e.AvgRelErr > 1 {
				t.Fatalf("%s: budget %v AvgRelErr = %v", m, env.Cfg.Budgets[i], e.AvgRelErr)
			}
		}
		// Full-ish budget should have low error; for PS3-family methods the
		// last (60%) budget must beat the first (10%).
		if c.Errs[len(c.Errs)-1].AvgRelErr > c.Errs[0].AvgRelErr+0.05 {
			t.Fatalf("%s: error grew with budget: %v → %v", m, c.Errs[0].AvgRelErr, c.Errs[len(c.Errs)-1].AvgRelErr)
		}
	}
}

func TestDataReadReduction(t *testing.T) {
	base := Curve{
		Budgets: []float64{0.1, 0.2, 0.4},
		Errs:    []metrics.Errors{{AvgRelErr: 0.4}, {AvgRelErr: 0.3}, {AvgRelErr: 0.2}},
	}
	better := Curve{
		Budgets: []float64{0.1, 0.2, 0.4},
		Errs:    []metrics.Errors{{AvgRelErr: 0.2}, {AvgRelErr: 0.1}, {AvgRelErr: 0.05}},
	}
	// base error at 0.2 budget is 0.3; better reaches ≤0.3 already at its
	// first point (0.1) → reduction 2×.
	if got := DataReadReduction(better, base, 0.2); got != 2 {
		t.Fatalf("reduction = %v, want 2", got)
	}
	// A curve never reaching the target error yields 1×.
	worse := Curve{
		Budgets: []float64{0.1, 0.4},
		Errs:    []metrics.Errors{{AvgRelErr: 0.9}, {AvgRelErr: 0.8}},
	}
	if got := DataReadReduction(worse, base, 0.2); got != 1 {
		t.Fatalf("reduction for non-crossing curve = %v, want 1", got)
	}
	// Unknown budget → NaN.
	if got := DataReadReduction(better, base, 0.33); !math.IsNaN(got) {
		t.Fatalf("reduction at unknown budget = %v, want NaN", got)
	}
}

func TestRunFig3(t *testing.T) {
	res, err := RunFig3(io.Discard, "aria", tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) < 4 {
		t.Fatalf("fig3 produced %d curves, want ≥4", len(res.Curves))
	}
}

func TestRunTable3ClusterSim(t *testing.T) {
	sim := ClusterSim{Workers: 8, MeanSec: 1, Sigma: 0.5, Seed: 1}
	lat1, comp1 := sim.Run(10)
	lat2, comp2 := sim.Run(100)
	if comp2 <= comp1 {
		t.Fatalf("compute not increasing with partitions: %v vs %v", comp1, comp2)
	}
	if lat2 <= lat1 {
		t.Fatalf("latency not increasing with partitions: %v vs %v", lat1, lat2)
	}
	// Compute scales ~linearly (10×); latency sublinearly (stragglers +
	// parallelism). Paper Table 3's headline.
	if comp2/comp1 < 5 {
		t.Fatalf("compute ratio %v, want near-linear", comp2/comp1)
	}
	if lat2/lat1 > comp2/comp1 {
		t.Fatalf("latency ratio %v not sublinear vs compute ratio %v", lat2/lat1, comp2/comp1)
	}
}

func TestRunTable4(t *testing.T) {
	rows, err := RunTable4(io.Discard, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("table4 rows = %d, want 4 datasets", len(rows))
	}
	for _, r := range rows {
		if r.Total <= 0 {
			t.Fatalf("%s: non-positive storage", r.Dataset)
		}
		if sum := r.Histogram + r.HH + r.AKMV + r.Measure; math.Abs(sum-r.Total) > 1e-6 {
			t.Fatalf("%s: families sum to %v, total %v", r.Dataset, sum, r.Total)
		}
	}
}

func TestRunTable5(t *testing.T) {
	rows, err := RunTable5(io.Discard, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.TotalMS < 0 || r.ClusterMS < 0 {
			t.Fatalf("%s: negative picker latency", r.Dataset)
		}
		if r.ClusterMS > r.TotalMS {
			t.Fatalf("%s: clustering time %v exceeds total %v", r.Dataset, r.ClusterMS, r.TotalMS)
		}
	}
}

func TestRunFig4Lesion(t *testing.T) {
	res, err := RunFig4(io.Discard, "aria", tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lesion) == 0 || len(res.Factor) == 0 {
		t.Fatal("lesion/factor analysis produced no curves")
	}
}

func TestRunFig5FeatureImportance(t *testing.T) {
	rows, err := RunFig5(io.Discard, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("fig5 rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		var sum float64
		for _, v := range r.Pct {
			if v < 0 {
				t.Fatalf("%s: negative importance share", r.Dataset)
			}
			sum += v
		}
		if math.Abs(sum-100) > 1e-6 {
			t.Fatalf("%s: importance shares sum to %v, want 100", r.Dataset, sum)
		}
	}
}

func TestCategoryImportanceCoversAllCategories(t *testing.T) {
	env := tinyEnv(t, "aria")
	imp := CategoryImportance(env)
	for _, cat := range []string{"selectivity", "hh", "dv", "measure"} {
		if _, ok := imp[cat]; !ok {
			t.Fatalf("category %q missing from importance map %v", cat, imp)
		}
	}
}

func TestRunFig7SelectivityBuckets(t *testing.T) {
	buckets, err := RunFig7(io.Discard, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) == 0 {
		t.Fatal("no selectivity buckets")
	}
	for _, b := range buckets {
		if b.Label == "" {
			t.Fatal("bucket with empty label")
		}
		if b.Queries < 0 {
			t.Fatalf("bucket %q has negative query count", b.Label)
		}
		for _, c := range b.Curves {
			if len(c.Errs) != len(c.Budgets) {
				t.Fatalf("bucket %q: malformed curve", b.Label)
			}
		}
	}
}

func TestRunFig10AlphaSweep(t *testing.T) {
	res, err := RunFig10(io.Discard, "kdd", tinyCfg(), []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Learned) != 2 || len(res.Oracle) != 2 {
		t.Fatalf("alpha sweep: %d learned / %d oracle curves, want 2/2", len(res.Learned), len(res.Oracle))
	}
}

func TestRunTable6ClusteringAlgos(t *testing.T) {
	rows, err := RunTable6(io.Discard, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("table6 empty")
	}
	for _, r := range rows {
		if r.HACSingle < 0 || r.HACWard < 0 || r.KMeansAUC < 0 {
			t.Fatalf("%s: negative AUC", r.Dataset)
		}
	}
}

func TestRunTable8StrataSizes(t *testing.T) {
	rows, err := RunTable8(io.Discard, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for b, s := range r.SizeByBudget {
			if s <= 0 {
				t.Fatalf("%s: strata size %d at budget %d", r.Dataset, s, b)
			}
		}
	}
}

func TestPrintCurvesRendersTable(t *testing.T) {
	var sb strings.Builder
	curves := []Curve{{
		Method:  MethodPS3,
		Budgets: []float64{0.1, 0.5},
		Errs:    []metrics.Errors{{AvgRelErr: 0.3}, {AvgRelErr: 0.1}},
	}}
	printCurves(&sb, "Test", "avg rel err", curves, func(e metrics.Errors) float64 { return e.AvgRelErr })
	out := sb.String()
	if !strings.Contains(out, "PS3") || !strings.Contains(out, "0.10") {
		t.Fatalf("rendered table missing content:\n%s", out)
	}
}

func TestBudgetParts(t *testing.T) {
	cases := []struct {
		frac  float64
		total int
		want  int
	}{
		{0, 100, 1},      // floor at 1
		{0.01, 100, 1},   //
		{0.5, 100, 50},   //
		{2, 100, 100},    // cap at total
		{0.249, 100, 25}, // round to nearest
	}
	for _, c := range cases {
		if got := budgetParts(c.frac, c.total); got != c.want {
			t.Fatalf("budgetParts(%v, %d) = %d, want %d", c.frac, c.total, got, c.want)
		}
	}
}
