package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"ps3/internal/dataset"
	"ps3/internal/metrics"
	"ps3/internal/picker"
	"ps3/internal/query"
)

// AlphaSweepResult holds Fig 10: learned vs oracle error curves per decay
// rate α.
type AlphaSweepResult struct {
	Dataset string
	Alphas  []float64
	Learned []Curve // one per α
	Oracle  []Curve
}

// RunFig10 reproduces Fig 10: the impact of the sampling decay rate α on
// learned importance sampling and on an oracle with perfect contribution
// knowledge (the paper uses the KDD dataset). Importance-only pickers
// (clustering and outliers disabled) isolate the effect of α.
func RunFig10(w io.Writer, dsName string, cfg Config, alphas []float64) (*AlphaSweepResult, error) {
	cfg = cfg.WithDefaults()
	if len(alphas) == 0 {
		alphas = []float64{1, 2, 3, 4, 5}
	}
	ds, err := dataset.ByName(dsName, dataset.Config{Rows: cfg.Rows, Parts: cfg.Parts, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	env, err := NewEnv(ds, cfg)
	if err != nil {
		return nil, err
	}
	res := &AlphaSweepResult{Dataset: dsName, Alphas: alphas}
	for _, alpha := range alphas {
		a := alpha
		variant := env.pickerVariant(func(c *picker.Config) {
			c.Alpha = a
			c.DisableCluster = true
			c.DisableOutlier = true
		})
		lc := env.CurveFor(Method(fmt.Sprintf("learned α=%.0f", a)), false, env.TestEx,
			func(ex picker.Example, n int, rng *rand.Rand) []query.WeightedPartition {
				return variant.Pick(ex.Query, ex.Features, n, rng)
			})
		res.Learned = append(res.Learned, lc)
		oc := env.CurveFor(Method(fmt.Sprintf("oracle α=%.0f", a)), false, env.TestEx,
			func(ex picker.Example, n int, rng *rand.Rand) []query.WeightedPartition {
				return variant.PickWithOracle(ex.Query, ex.Features, ex.Contrib, n, rng)
			})
		res.Oracle = append(res.Oracle, oc)
	}
	printCurves(w, fmt.Sprintf("Fig 10 [%s, learned regressors]", dsName), "avg relative error",
		res.Learned, func(e metrics.Errors) float64 { return e.AvgRelErr })
	printCurves(w, fmt.Sprintf("Fig 10 [%s, oracle]", dsName), "avg relative error",
		res.Oracle, func(e metrics.Errors) float64 { return e.AvgRelErr })
	return res, nil
}

// EstimatorResult holds Fig 12: biased (closest-to-median) vs unbiased
// (random member) cluster exemplars.
type EstimatorResult struct {
	Dataset string
	Curves  []Curve // [biased, unbiased]
}

// RunFig12 reproduces Fig 12 on every dataset: the biased estimator tends
// to win at small budgets and the two converge at larger ones (Appendix D).
func RunFig12(w io.Writer, cfg Config) ([]EstimatorResult, error) {
	cfg = cfg.WithDefaults()
	var out []EstimatorResult
	for _, name := range dataset.Names() {
		ds, err := dataset.ByName(name, dataset.Config{Rows: cfg.Rows, Parts: cfg.Parts, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		env, err := NewEnv(ds, cfg)
		if err != nil {
			return nil, err
		}
		res := EstimatorResult{Dataset: name}
		res.Curves = append(res.Curves, env.ErrorCurve(MethodPS3, env.TestEx))
		res.Curves = append(res.Curves, env.ErrorCurve(MethodPS3Unbiased, env.TestEx))
		printCurves(w, fmt.Sprintf("Fig 12 [%s]", name), "avg relative error",
			res.Curves, func(e metrics.Errors) float64 { return e.AvgRelErr })
		out = append(out, res)
	}
	return out, nil
}
