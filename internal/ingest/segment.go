package ingest

import (
	"fmt"
	"path/filepath"

	"ps3/internal/fault"
	"ps3/internal/store"
	"ps3/internal/table"
)

// Segment files are ordinary store-format tables (same header, per-column
// encoding chooser, CRC blocks) holding only the partitions sealed since
// the previous flush, plus the dictionary snapshot taken at flush start.
// Names are zero-padded so lexical order is segment order.

func segmentName(i int) string { return fmt.Sprintf("segment-%06d.ps3", i) }
func walName(i int) string     { return fmt.Sprintf("wal-%06d.log", i) }

// syncDir fsyncs a directory so a just-created, renamed or removed entry
// survives a crash.
func syncDir(fsys fault.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeSegmentTemp writes partitions as a store file at the segment's
// temporary name, fsyncing the contents. The caller renames it into place
// under the pipeline lock (and fsyncs the directory) once the flush is
// ready to commit; stray .tmp files found at recovery are deleted. hints
// carries per-column encoding hints indexed by position within parts.
func writeSegmentTemp(fsys fault.FS, dir string, idx int, schema *table.Schema, dict *table.Dict, parts []*table.Partition, hints func(part, col int) (store.ColHint, bool)) (string, error) {
	final := filepath.Join(dir, segmentName(idx))
	tmp := final + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return "", err
	}
	t := &table.Table{Schema: schema, Dict: dict, Parts: parts}
	_, err = store.WriteWith(f, t, store.WriteOptions{Hints: hints})
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fsys.Remove(tmp)
		return "", fmt.Errorf("ingest: write segment %d: %w", idx, err)
	}
	return tmp, nil
}
