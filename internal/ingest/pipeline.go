package ingest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"

	"ps3/internal/core"
	"ps3/internal/fault"
	"ps3/internal/stats"
	"ps3/internal/store"
	"ps3/internal/table"
)

// Config parameterizes an ingest pipeline.
type Config struct {
	// Dir is the ingest directory holding the write-ahead logs and flushed
	// segments; created if absent. One pipeline owns a directory.
	Dir string
	// RowsPerPart is the partition seal size. It should match the base
	// table's partitioning (ps3serve derives it as NumRows/NumParts);
	// defaults to 1024.
	RowsPerPart int
	// CommitWindow is the WAL group-commit window: appends arriving within
	// one window share a single fsync. <= 0 fsyncs on every append
	// (maximum durability, minimum throughput).
	CommitWindow time.Duration
	// PublishTail includes memtable rows (sealed-but-unflushed partitions
	// and the building tail) in published snapshots as a resident table,
	// at the cost of extending statistics over them at publish time. When
	// false, snapshots cover only the base and flushed segments.
	PublishTail bool
	// Parallelism bounds the sketch-building fan-out during stats
	// extension; <= 0 uses the base statistics' own setting.
	Parallelism int
	// CacheBytes is the per-segment block cache budget (store.Options).
	CacheBytes int64
	// ManualFlush disables the background flush loop; segments are cut
	// only by explicit Flush/Freeze calls. Tests use this to control
	// flush timing exactly.
	ManualFlush bool
	// OnPublish, when set, receives each published snapshot and its
	// version — typically serve.(*Server).Swap behind an adapter. Called
	// outside the pipeline's state lock, in flush order.
	OnPublish func(sys *core.System, version int)
	// FS is the filesystem seam every pipeline disk operation goes through
	// (WAL, segment temporaries, renames, directory fsyncs, recovery scans).
	// nil means fault.OS; chaos tests pass an *fault.Injector.
	FS fault.FS
}

// PipelineStats is a point-in-time counter snapshot.
type PipelineStats struct {
	// AppendBatches and RowsAppended count acknowledged appends since open
	// (recovered rows count as appended).
	AppendBatches int64
	RowsAppended  int64
	// Flushes counts segments cut since open; SegmentParts is the total
	// partitions across all live segments.
	Flushes      int64
	Segments     int
	SegmentParts int
	// PendingRows are rows in the memtable, not yet flushed to a segment
	// (durable in the WAL).
	PendingRows int
	// Version is the snapshot version: the number of segments ever
	// flushed. Published snapshots carry version+... see Version.
	Version int
	// RecoveredRows is how many rows WAL replay restored at open.
	RecoveredRows int64
}

// Pipeline is the live ingest path: appends are framed into a write-ahead
// log (acknowledged after group commit), accumulated in a memtable, and
// flushed as immutable store-format segments; each flush extends the
// statistics incrementally and publishes a rebound snapshot through
// OnPublish.
//
// WAL rotation is keyed to segment flushes: wal-k holds exactly the rows
// appended since segment k-1 was cut. A flush writes segment k from the
// sealed partitions, re-logs any rows that arrived during the flush into
// wal-(k+1), renames the segment into place, and only then deletes wal-k —
// at every crash point the union of segments and surviving logs covers
// every acknowledged row exactly once after recovery.
//
// Pipeline implements core.MutableSource: as a PartitionSource it serves
// the live view (base, then segments, then memtable partitions). Live-view
// reads and the dictionary are safe against concurrent appends only for
// partitions that already existed; serving traffic should use the
// immutable published snapshots instead. Appends, flushes and freeze are
// safe to call concurrently.
type Pipeline struct {
	cfg    Config
	base   *core.System
	schema *table.Schema
	// baseParts/baseRows/baseBytes freeze the base extent so the live view
	// doesn't re-ask the base source under the state lock.
	baseParts int

	// mu guards everything below: the dictionary, the current WAL, the
	// memtable and the published state. Appends hold it only to enqueue
	// and code rows; fsync waits happen outside.
	mu      sync.Mutex
	dict    *table.Dict
	wal     *WAL
	walIdx  int
	mem     *memtable
	segs    []*store.Reader
	segStat []int // cumulative partition starts per segment, base-relative
	stats   *stats.TableStats
	version int
	frozen  bool
	closed  bool
	ingErr  error // sticky: a failed flush or diverged state poisons the pipeline

	appendBatches int64
	rowsAppended  int64
	flushes       int64
	recoveredRows int64

	// flushMu serializes flushes so segment indexes and stats extensions
	// advance one at a time.
	flushMu  sync.Mutex
	flushReq chan struct{} // nil under ManualFlush or after freeze
	loopDone chan struct{}
}

var _ core.MutableSource = (*Pipeline)(nil)

var (
	segmentRe = regexp.MustCompile(`^segment-(\d{6})\.ps3$`)
	walRe     = regexp.MustCompile(`^wal-(\d{6})\.log$`)
)

// Open recovers (or starts) an ingest pipeline in cfg.Dir on top of base,
// a system over the immutable base table whose trained picker each
// published snapshot inherits. Recovery deletes stray temporaries, opens
// the contiguous run of flushed segments, verifies and adopts their
// dictionary snapshots, extends the base statistics over their
// partitions, truncates the current WAL at the first torn record and
// replays it into the memtable. Acknowledged rows survive; torn tails do
// not.
func Open(cfg Config, base *core.System) (*Pipeline, error) {
	if base.Stats == nil {
		return nil, errors.New("ingest: base system has no statistics to extend")
	}
	if cfg.RowsPerPart <= 0 {
		cfg.RowsPerPart = 1024
	}
	if cfg.FS == nil {
		cfg.FS = fault.OS
	}
	if err := cfg.FS.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:       cfg,
		base:      base,
		schema:    base.Source.TableSchema(),
		baseParts: base.Source.NumParts(),
	}

	segIdx, walIdx, err := scanDir(cfg.FS, cfg.Dir)
	if err != nil {
		return nil, err
	}
	// Segments must be the contiguous prefix 0..K-1: flushes are serial
	// and recovery deletes nothing but temporaries and stale logs, so a
	// gap means the directory was tampered with or mixed across datasets.
	for i, idx := range segIdx {
		if idx != i {
			return nil, fmt.Errorf("ingest: segment run is not contiguous: found segment %d at position %d", idx, i)
		}
	}
	k := len(segIdx)
	// wal-K is the live log; logs for any other index are stale (their
	// rows are in flushed segments or were re-logged into wal-K).
	for _, idx := range walIdx {
		if idx != k {
			if err := cfg.FS.Remove(filepath.Join(cfg.Dir, walName(idx))); err != nil {
				return nil, fmt.Errorf("ingest: remove stale wal %d: %w", idx, err)
			}
		}
	}

	// Rebuild the dictionary: the live dictionary is append-only and each
	// segment embeds the snapshot taken when its flush began, so segment
	// dictionaries form a growing chain of prefix extensions over the base
	// dictionary. Verify the chain and adopt the newest snapshot.
	baseDict := base.Source.TableDict()
	vals := baseDict.Values()
	ts := base.Stats
	for _, idx := range segIdx {
		r, err := store.OpenFS(cfg.FS, filepath.Join(cfg.Dir, segmentName(idx)), store.Options{CacheBytes: cfg.CacheBytes})
		if err != nil {
			p.closeSegs()
			return nil, fmt.Errorf("ingest: open segment %d: %w", idx, err)
		}
		p.segs = append(p.segs, r)
		segVals := r.TableDict().Values()
		if len(segVals) < len(vals) {
			p.closeSegs()
			return nil, fmt.Errorf("ingest: segment %d dictionary has %d values, older state has %d", idx, len(segVals), len(vals))
		}
		for i := range vals {
			if segVals[i] != vals[i] {
				p.closeSegs()
				return nil, fmt.Errorf("ingest: segment %d dictionary diverges at code %d", idx, i)
			}
		}
		vals = segVals

		// Extend statistics over the segment's partitions at their global
		// positions. ReadUncached partitions carry segment-local IDs;
		// stats rows are indexed globally, so restamp.
		parts := make([]*table.Partition, r.NumParts())
		for i := range parts {
			q, err := r.ReadUncached(i)
			if err != nil {
				p.closeSegs()
				return nil, fmt.Errorf("ingest: read segment %d partition %d: %w", idx, i, err)
			}
			q.ID = len(ts.Parts) + i
			parts[i] = q
		}
		ts, err = ts.ExtendedWith(r.TableDict(), parts, cfg.Parallelism)
		if err != nil {
			p.closeSegs()
			return nil, fmt.Errorf("ingest: extend stats over segment %d: %w", idx, err)
		}
	}
	dict, err := table.DictFromValues(append([]string(nil), vals...))
	if err != nil {
		p.closeSegs()
		return nil, fmt.Errorf("ingest: rebuild dictionary: %w", err)
	}
	p.dict = dict
	p.stats = ts
	p.segStarts()
	p.mem = newMemtable(p.schema, cfg.RowsPerPart, len(ts.Parts))

	// Replay the live log: truncate at the first torn record, then re-code
	// and re-append every surviving row in log order. Re-coding reproduces
	// the exact code assignment of the original appends because codes were
	// assigned in enqueue order under the same lock.
	walPath := filepath.Join(cfg.Dir, walName(k))
	if err := p.replay(walPath); err != nil {
		p.closeSegs()
		return nil, err
	}
	w, err := OpenWALFS(cfg.FS, walPath, cfg.CommitWindow)
	if err != nil {
		p.closeSegs()
		return nil, err
	}
	p.wal = w
	p.walIdx = k
	p.version = k

	if !cfg.ManualFlush {
		p.flushReq = make(chan struct{}, 1)
		p.loopDone = make(chan struct{})
		go p.flushLoop(p.flushReq)
		if len(p.mem.sealed) > 0 {
			p.flushReq <- struct{}{}
		}
	}
	return p, nil
}

// scanDir inventories the ingest directory: sorted segment indexes, sorted
// WAL indexes, temporaries deleted.
func scanDir(fsys fault.FS, dir string) (segIdx, walIdx []int, err error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) == ".tmp" {
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
				return nil, nil, fmt.Errorf("ingest: remove temporary %s: %w", name, err)
			}
			continue
		}
		if m := segmentRe.FindStringSubmatch(name); m != nil {
			n, _ := strconv.Atoi(m[1])
			segIdx = append(segIdx, n)
		} else if m := walRe.FindStringSubmatch(name); m != nil {
			n, _ := strconv.Atoi(m[1])
			walIdx = append(walIdx, n)
		}
	}
	sort.Ints(segIdx)
	sort.Ints(walIdx)
	return segIdx, walIdx, nil
}

// replay restores the memtable from the live WAL, truncating the file at
// the first torn record so the log on disk matches what was replayed.
func (p *Pipeline) replay(path string) error {
	f, err := p.cfg.FS.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	records, clean, err := ReadWAL(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("ingest: replay %s: %w", path, err)
	}
	if st, err := p.cfg.FS.Stat(path); err == nil && st.Size() > clean {
		if err := p.cfg.FS.Truncate(path, clean); err != nil {
			return fmt.Errorf("ingest: truncate torn wal tail: %w", err)
		}
	}
	catRow := make([]uint32, p.schema.NumCols())
	for _, rec := range records {
		num, cat, err := DecodeRows(rec, p.schema)
		if err != nil {
			return fmt.Errorf("ingest: replay %s: intact frame holds a bad record: %w", path, err)
		}
		for i := range num {
			p.codeRow(cat[i], catRow)
			if err := p.mem.append(num[i], catRow); err != nil {
				return err
			}
			p.recoveredRows++
			p.rowsAppended++
		}
		p.appendBatches++
	}
	return nil
}

// codeRow assigns dictionary codes for one row's categorical cells into
// dst. Must run under p.mu (or before the pipeline is shared): code
// assignment order is the replay contract.
func (p *Pipeline) codeRow(cat []string, dst []uint32) {
	for c, col := range p.schema.Cols {
		if !col.IsNumeric() {
			dst[c] = p.dict.Code(cat[c])
		}
	}
}

// segStarts recomputes the per-segment cumulative partition starts
// (base-relative). Must run under p.mu except during Open.
func (p *Pipeline) segStarts() {
	p.segStat = p.segStat[:0]
	n := 0
	for _, r := range p.segs {
		p.segStat = append(p.segStat, n)
		n += r.NumParts()
	}
}

func (p *Pipeline) closeSegs() {
	for _, r := range p.segs {
		r.Close()
	}
}

func (p *Pipeline) usableLocked() error {
	switch {
	case p.ingErr != nil:
		return p.ingErr
	case p.closed:
		return errors.New("ingest: pipeline is closed")
	case p.frozen:
		return errors.New("ingest: pipeline is frozen")
	}
	return nil
}

// AppendRow ingests one row, returning once it is durably logged.
func (p *Pipeline) AppendRow(num []float64, cat []string) error {
	return p.AppendRows([][]float64{num}, [][]string{cat})
}

// AppendRows ingests a batch as one durability unit: the batch is framed
// into a single WAL record, its rows enter the memtable, and the call
// returns after the record's commit group is fsynced. Rows become visible
// to published snapshots at the next flush (or immediately, under
// PublishTail). On error none of the batch is acknowledged — though rows
// of a batch that failed only at the durability step may still reappear
// after recovery, the usual write-ahead read-uncommitted caveat.
func (p *Pipeline) AppendRows(num [][]float64, cat [][]string) error {
	payload, err := EncodeRows(p.schema, num, cat)
	if err != nil {
		return err
	}
	p.mu.Lock()
	if err := p.usableLocked(); err != nil {
		p.mu.Unlock()
		return err
	}
	// Enqueue before coding: the WAL sequence fixes the global append
	// order, and codes are assigned under the same critical section so
	// replay (which re-codes in log order) reproduces them exactly.
	w := p.wal
	seq, err := w.Enqueue(payload)
	if err != nil {
		p.mu.Unlock()
		return err
	}
	catRow := make([]uint32, p.schema.NumCols())
	for i := range num {
		p.codeRow(cat[i], catRow)
		if err := p.mem.append(num[i], catRow); err != nil {
			// The WAL holds rows the memtable does not: state has
			// diverged, poison the pipeline.
			p.ingErr = err
			p.mu.Unlock()
			return err
		}
	}
	p.appendBatches++
	p.rowsAppended += int64(len(num))
	if len(p.mem.sealed) > 0 && p.flushReq != nil {
		select {
		case p.flushReq <- struct{}{}:
		default:
		}
	}
	p.mu.Unlock()
	// Wait on the WAL we enqueued to — p.wal may have rotated meanwhile;
	// rotation closes the old log only after committing it, so this
	// returns promptly either way.
	return w.WaitDurable(seq)
}

// flushLoop cuts a segment whenever appends seal partitions. Lifecycle
// goroutine, joined by Freeze/Close. The request channel is passed in
// rather than read off the struct: Freeze/Close nil the field under the
// mutex, which this goroutine does not hold.
func (p *Pipeline) flushLoop(req <-chan struct{}) {
	defer close(p.loopDone)
	for range req {
		if err := p.flush(false); err != nil && !errors.Is(err, errNothingToFlush) {
			return // pipeline is poisoned; appends now fail with ingErr
		}
	}
}

var errNothingToFlush = errors.New("ingest: nothing to flush")

// Flush cuts a segment from the sealed memtable partitions now and
// publishes a snapshot. Returns nil when there is nothing sealed.
func (p *Pipeline) Flush() error {
	err := p.flush(false)
	if errors.Is(err, errNothingToFlush) {
		return nil
	}
	return err
}

// flush is the segment-cut critical path; partial additionally seals the
// building tail (the freeze path). Serialized by flushMu. Any error
// poisons the pipeline: the flush protocol's crash-safety argument relies
// on its steps completing in order, so a half-applied flush must not be
// silently retried over.
func (p *Pipeline) flush(partial bool) error {
	p.flushMu.Lock()
	defer p.flushMu.Unlock()

	p.mu.Lock()
	switch {
	case p.ingErr != nil:
		err := p.ingErr
		p.mu.Unlock()
		return err
	case p.closed:
		p.mu.Unlock()
		return errors.New("ingest: pipeline is closed")
	case p.frozen && !partial:
		p.mu.Unlock()
		return errors.New("ingest: pipeline is frozen")
	}
	if partial {
		if err := p.mem.sealPartial(); err != nil {
			p.ingErr = err
			p.mu.Unlock()
			return err
		}
	}
	sealed := p.mem.takeSealed()
	if len(sealed) == 0 {
		p.mu.Unlock()
		return errNothingToFlush
	}
	segIdx := len(p.segs)
	// Dictionary snapshot at flush start: covers every code the sealed
	// partitions store (codes are assigned before rows are appended), and
	// is the prefix-chain link recovery verifies.
	dictSnap, err := table.DictFromValues(append([]string(nil), p.dict.Values()...))
	baseStats := p.stats
	p.mu.Unlock()
	if err != nil {
		return p.poison(fmt.Errorf("ingest: snapshot dictionary: %w", err))
	}

	// Heavy work outside the lock: sketch the new partitions and write the
	// segment to a temporary. Appends continue concurrently into wal-k and
	// the memtable.
	extended, err := baseStats.ExtendedWith(dictSnap, sealed, p.cfg.Parallelism)
	if err != nil {
		return p.poison(fmt.Errorf("ingest: extend stats: %w", err))
	}
	old := len(baseStats.Parts)
	hints := store.HintsFromStats(extended)
	tmp, err := writeSegmentTemp(p.cfg.FS, p.cfg.Dir, segIdx, p.schema, dictSnap, sealed, func(part, col int) (store.ColHint, bool) {
		return hints(old+part, col)
	})
	if err != nil {
		return p.poison(err)
	}
	final := filepath.Join(p.cfg.Dir, segmentName(segIdx))

	// Commit, under the state lock: rotate the WAL, rename the segment
	// into place, swap in the extended state and build the snapshot. The
	// ordering is load-bearing — see the type comment's crash argument.
	p.mu.Lock()
	oldWAL := p.wal
	if err := oldWAL.Close(); err != nil {
		return p.poisonLocked(fmt.Errorf("ingest: close wal %d: %w", p.walIdx, err))
	}
	newWAL, err := OpenWALFS(p.cfg.FS, filepath.Join(p.cfg.Dir, walName(segIdx+1)), p.cfg.CommitWindow)
	if err != nil {
		return p.poisonLocked(err)
	}
	// Rows that arrived while the segment was being written live only in
	// the old log; re-log them before it is deleted.
	if p.mem.pendingRows() > 0 {
		rn, rc := p.mem.unflushedRows(p.dict)
		payload, err := EncodeRows(p.schema, rn, rc)
		if err == nil {
			err = newWAL.Append(payload)
		}
		if err != nil {
			newWAL.Close()
			return p.poisonLocked(fmt.Errorf("ingest: re-log %d rows: %w", len(rn), err))
		}
	}
	if err := p.cfg.FS.Rename(tmp, final); err != nil {
		newWAL.Close()
		return p.poisonLocked(err)
	}
	if err := syncDir(p.cfg.FS, p.cfg.Dir); err != nil {
		newWAL.Close()
		return p.poisonLocked(err)
	}
	reader, err := store.OpenFS(p.cfg.FS, final, store.Options{CacheBytes: p.cfg.CacheBytes})
	if err != nil {
		newWAL.Close()
		return p.poisonLocked(fmt.Errorf("ingest: reopen segment %d: %w", segIdx, err))
	}
	if err := p.cfg.FS.Remove(filepath.Join(p.cfg.Dir, walName(p.walIdx))); err != nil {
		newWAL.Close()
		reader.Close()
		return p.poisonLocked(err)
	}
	p.wal = newWAL
	p.walIdx = segIdx + 1
	p.segs = append(p.segs, reader)
	p.segStarts()
	p.stats = extended
	p.version++
	p.flushes++
	var sys *core.System
	version := p.version
	if p.cfg.OnPublish != nil {
		sys, err = p.snapshotLocked()
		if err != nil {
			return p.poisonLocked(fmt.Errorf("ingest: build snapshot %d: %w", version, err))
		}
	}
	p.mu.Unlock()

	if sys != nil {
		p.cfg.OnPublish(sys, version)
	}
	return nil
}

// Err reports the pipeline's sticky poison error: non-nil once a failed
// flush, WAL I/O error or diverged state has made further writes unsafe.
// A poisoned pipeline rejects appends and flushes but leaves every already
// published snapshot serving; serve's read-only mode is driven off this
// (see serve.AppendHealth).
func (p *Pipeline) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ingErr != nil {
		return p.ingErr
	}
	// A WAL whose commit loop hit an I/O error poisons appends before the
	// pipeline notices: surface it here so read-only mode flips as soon as
	// durability is gone, not on the next append attempt.
	if p.wal != nil {
		if err := p.wal.Err(); err != nil {
			return err
		}
	}
	return nil
}

func (p *Pipeline) poison(err error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ingErr == nil {
		p.ingErr = err
	}
	return err
}

// poisonLocked is poison for callers already holding p.mu; it unlocks.
func (p *Pipeline) poisonLocked(err error) error {
	if p.ingErr == nil {
		p.ingErr = err
	}
	p.mu.Unlock()
	return err
}

// snapshotLocked assembles an immutable queryable snapshot: the base
// source plus every flushed segment (plus, under PublishTail, a resident
// table of memtable partitions), served by a system that inherits the
// base's trained picker over the extended statistics. Requires p.mu.
func (p *Pipeline) snapshotLocked() (*core.System, error) {
	subs := make([]table.PartitionSource, 0, len(p.segs)+2)
	subs = append(subs, p.base.Source)
	for _, r := range p.segs {
		subs = append(subs, r)
	}
	ts := p.stats
	if p.cfg.PublishTail {
		tail, err := p.mem.tailPartition()
		if err != nil {
			return nil, err
		}
		parts := append([]*table.Partition(nil), p.mem.sealed...)
		if tail != nil {
			parts = append(parts, tail)
		}
		if len(parts) > 0 {
			// Snapshots must not share the mutable live dictionary;
			// take an immutable copy covering the tail's codes.
			snap, err := table.DictFromValues(append([]string(nil), p.dict.Values()...))
			if err != nil {
				return nil, err
			}
			ts, err = ts.ExtendedWith(snap, parts, p.cfg.Parallelism)
			if err != nil {
				return nil, err
			}
			subs = append(subs, &table.Table{Schema: p.schema, Dict: snap, Parts: parts})
		}
	}
	return p.base.Rebind(newMultiSource(p.schema, ts.Dict, subs...), ts)
}

// Snapshot builds the current published view on demand — what OnPublish
// would next receive — with its version.
func (p *Pipeline) Snapshot() (*core.System, int, error) {
	// Serialize against flushes: mid-flush, sealed partitions taken off
	// the memtable are in neither the stats nor the live view, and a
	// snapshot cut in that window would silently omit them.
	p.flushMu.Lock()
	defer p.flushMu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ingErr != nil {
		return nil, 0, p.ingErr
	}
	sys, err := p.snapshotLocked()
	return sys, p.version, err
}

// FreezeSource flushes everything buffered — including a final short
// partition from the building tail — and seals the pipeline; further
// appends fail. The final segment publishes through OnPublish like any
// other flush.
func (p *Pipeline) FreezeSource() error {
	p.mu.Lock()
	if p.ingErr != nil {
		err := p.ingErr
		p.mu.Unlock()
		return err
	}
	if p.frozen || p.closed {
		p.mu.Unlock()
		return errors.New("ingest: pipeline already sealed")
	}
	p.frozen = true
	req := p.flushReq
	p.flushReq = nil
	p.mu.Unlock()
	if req != nil {
		close(req)
		<-p.loopDone
	}
	err := p.flush(true)
	if errors.Is(err, errNothingToFlush) {
		return nil
	}
	return err
}

// Close releases the pipeline without flushing: buffered rows stay in the
// WAL and are replayed on the next Open — the crash-consistent shutdown.
// Pending appends are committed (the WAL close fsyncs them).
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	req := p.flushReq
	p.flushReq = nil
	w := p.wal
	p.mu.Unlock()
	if req != nil {
		close(req)
		<-p.loopDone
	}
	// flushMu: a flush already past its entry check may be rotating the
	// WAL; let it finish before tearing the handles down.
	p.flushMu.Lock()
	defer p.flushMu.Unlock()
	p.mu.Lock()
	w = p.wal
	segs := p.segs
	p.segs = nil
	p.mu.Unlock()
	var err error
	if w != nil {
		err = w.Close()
	}
	for _, r := range segs {
		if cerr := r.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Stats reports pipeline counters.
func (p *Pipeline) Stats() PipelineStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PipelineStats{
		AppendBatches: p.appendBatches,
		RowsAppended:  p.rowsAppended,
		Flushes:       p.flushes,
		Segments:      len(p.segs),
		PendingRows:   p.mem.pendingRows(),
		Version:       p.version,
		RecoveredRows: p.recoveredRows,
	}
	for _, r := range p.segs {
		st.SegmentParts += r.NumParts()
	}
	return st
}

// Version returns the current snapshot version (the number of segments
// ever flushed).
func (p *Pipeline) Version() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.version
}

// --- live view: table.PartitionSource over base + segments + memtable ---

// TableSchema returns the shared schema.
func (p *Pipeline) TableSchema() *table.Schema { return p.schema }

// TableDict returns the live dictionary. It mutates under appends; callers
// must quiesce writes (or use a published snapshot) before compiling
// queries against it.
func (p *Pipeline) TableDict() *table.Dict {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dict
}

// NumParts counts base, segment and memtable partitions (the building
// tail counts as one when non-empty).
func (p *Pipeline) NumParts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.numPartsLocked()
}

func (p *Pipeline) numPartsLocked() int {
	n := p.baseParts
	for _, r := range p.segs {
		n += r.NumParts()
	}
	n += len(p.mem.sealed)
	if p.mem.rows > 0 {
		n++
	}
	return n
}

// NumRows counts every row, including unflushed ones.
func (p *Pipeline) NumRows() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.base.Source.NumRows()
	for _, r := range p.segs {
		n += r.NumRows()
	}
	return n + p.mem.pendingRows()
}

// TotalBytes reports the decoded footprint of base and segments plus the
// memtable's logical size.
func (p *Pipeline) TotalBytes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.base.Source.TotalBytes()
	for _, r := range p.segs {
		n += r.TotalBytes()
	}
	for _, q := range p.mem.sealed {
		n += q.SizeBytes()
	}
	for _, col := range p.mem.num {
		n += 8 * len(col)
	}
	for _, col := range p.mem.cat {
		n += 4 * len(col)
	}
	return n
}

// Read serves partition i of the live view: the base range delegates to
// the base source, segment ranges to their readers, and the memtable range
// returns sealed partitions directly (the tail as a point-in-time copy).
func (p *Pipeline) Read(i int) (*table.Partition, error) {
	if i < 0 {
		return nil, fmt.Errorf("ingest: partition %d out of range", i)
	}
	if i < p.baseParts {
		return p.base.Source.Read(i)
	}
	p.mu.Lock()
	rel := i - p.baseParts
	j := sort.Search(len(p.segStat), func(k int) bool { return p.segStat[k] > rel }) - 1
	if j >= 0 && j < len(p.segs) {
		if local := rel - p.segStat[j]; local < p.segs[j].NumParts() {
			r := p.segs[j]
			p.mu.Unlock()
			return r.Read(local)
		}
	}
	segParts := 0
	for _, r := range p.segs {
		segParts += r.NumParts()
	}
	mi := rel - segParts
	if mi < len(p.mem.sealed) {
		q := p.mem.sealed[mi]
		p.mu.Unlock()
		return q, nil
	}
	if mi == len(p.mem.sealed) && p.mem.rows > 0 {
		q, err := p.mem.tailPartition()
		p.mu.Unlock()
		return q, err
	}
	n := p.numPartsLocked()
	p.mu.Unlock()
	return nil, fmt.Errorf("ingest: partition %d out of range [0, %d)", i, n)
}

// ResetIO clears the base's and segments' I/O counters.
func (p *Pipeline) ResetIO() {
	p.base.Source.ResetIO()
	p.mu.Lock()
	segs := append([]*store.Reader(nil), p.segs...)
	p.mu.Unlock()
	for _, r := range segs {
		r.ResetIO()
	}
}

// IOStats aggregates base and segment I/O; memtable reads are free.
func (p *Pipeline) IOStats() (parts int64, bytes int64) {
	parts, bytes = p.base.Source.IOStats()
	p.mu.Lock()
	segs := append([]*store.Reader(nil), p.segs...)
	p.mu.Unlock()
	for _, r := range segs {
		pp, bb := r.IOStats()
		parts += pp
		bytes += bb
	}
	return parts, bytes
}
