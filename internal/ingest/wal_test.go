package ingest

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func frames(payloads ...[]byte) []byte {
	var buf []byte
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	return buf
}

func TestReadWALRoundTrip(t *testing.T) {
	payloads := [][]byte{[]byte("a"), []byte("second record"), bytes.Repeat([]byte{0xEE}, 4096)}
	buf := frames(payloads...)
	records, clean, err := ReadWAL(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if clean != int64(len(buf)) {
		t.Fatalf("clean offset %d, want %d", clean, len(buf))
	}
	if len(records) != len(payloads) {
		t.Fatalf("got %d records, want %d", len(records), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(records[i], payloads[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// TestReadWALTornTail cuts a valid log at every possible byte offset: the
// scan must return exactly the records whose frames survive whole, with
// clean at the end of the last intact frame, and never an error — a torn
// tail is the normal shape of a crash-cut log.
func TestReadWALTornTail(t *testing.T) {
	payloads := [][]byte{[]byte("one"), []byte("twotwo"), []byte("threethree")}
	buf := frames(payloads...)
	// Frame boundaries: offsets where a prefix holds exactly k records.
	bounds := []int64{0}
	for _, p := range payloads {
		bounds = append(bounds, bounds[len(bounds)-1]+int64(frameHeader)+int64(len(p)))
	}
	for cut := 0; cut <= len(buf); cut++ {
		records, clean, err := ReadWAL(bytes.NewReader(buf[:cut]))
		if err != nil {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
		wantK := 0
		for k := range bounds {
			if bounds[k] <= int64(cut) {
				wantK = k
			}
		}
		if len(records) != wantK {
			t.Fatalf("cut %d: got %d records, want %d", cut, len(records), wantK)
		}
		if clean != bounds[wantK] {
			t.Fatalf("cut %d: clean %d, want %d", cut, clean, bounds[wantK])
		}
	}
}

func TestReadWALBadCRC(t *testing.T) {
	buf := frames([]byte("good"), []byte("corrupted"), []byte("after"))
	// Flip a payload byte of the second record.
	off := frameHeader + len("good") + frameHeader
	buf[off] ^= 0xFF
	records, clean, err := ReadWAL(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || string(records[0]) != "good" {
		t.Fatalf("got %d records, want only the first", len(records))
	}
	if want := int64(frameHeader + len("good")); clean != want {
		t.Fatalf("clean %d, want %d", clean, want)
	}
}

func TestReadWALOversizedAndZeroLength(t *testing.T) {
	good := frames([]byte("keep"))
	for _, n := range []uint32{0, MaxRecordBytes + 1, 0xFFFFFFFF} {
		buf := append([]byte(nil), good...)
		var h [frameHeader]byte
		binary.LittleEndian.PutUint32(h[0:4], n)
		buf = append(buf, h[:]...)
		records, clean, err := ReadWAL(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("length %d: %v", n, err)
		}
		if len(records) != 1 {
			t.Fatalf("length %d: got %d records, want 1", n, len(records))
		}
		if clean != int64(len(good)) {
			t.Fatalf("length %d: clean %d, want %d", n, clean, len(good))
		}
	}
}

func TestWALAppendDurableAndReadBack(t *testing.T) {
	for _, window := range []time.Duration{0, time.Millisecond} {
		t.Run(fmt.Sprintf("window=%v", window), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			w, err := OpenWAL(path, window)
			if err != nil {
				t.Fatal(err)
			}
			var want [][]byte
			for i := 0; i < 20; i++ {
				p := []byte(fmt.Sprintf("record-%03d", i))
				want = append(want, p)
				if err := w.Append(p); err != nil {
					t.Fatal(err)
				}
			}
			// Durability check before Close: the file must already hold
			// every acknowledged record.
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			records, _, err := ReadWAL(f)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			if len(records) != len(want) {
				t.Fatalf("got %d records on disk before close, want %d", len(records), len(want))
			}
			for i := range want {
				if !bytes.Equal(records[i], want[i]) {
					t.Fatalf("record %d mismatch", i)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWALGroupCommitConcurrent hammers one log from many goroutines: every
// acknowledged record must be on disk, in a single sequence (no
// interleaved/torn frames), with all records present.
func TestWALGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, 500*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) { //lint:nakedgo-ok test drives concurrent appenders; joined on wg below
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := w.Append([]byte(fmt.Sprintf("w%d-%04d", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	records, _, err := ReadWAL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != workers*perWorker {
		t.Fatalf("got %d records, want %d", len(records), workers*perWorker)
	}
	seen := make(map[string]bool, len(records))
	for _, r := range records {
		seen[string(r)] = true
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("got %d distinct records, want %d", len(seen), workers*perWorker)
	}
}

func TestWALClosedAppendFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("after")); err == nil {
		t.Fatal("append to closed wal must fail")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestWALEnqueueValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Enqueue(nil); err == nil {
		t.Fatal("empty record must be rejected")
	}
	if _, err := w.Enqueue(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("oversized record must be rejected")
	}
}
