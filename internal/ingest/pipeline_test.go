package ingest

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"ps3/internal/core"
	"ps3/internal/dataset"
	"ps3/internal/query"
	"ps3/internal/table"
)

// fixtureRows extracts every row of t in partition order, decoded to the
// append wire form (strings for categorical cells).
func fixtureRows(t testing.TB, tbl *table.Table) (num [][]float64, cat [][]string) {
	t.Helper()
	w := tbl.Schema.NumCols()
	for _, p := range tbl.Parts {
		for r := 0; r < p.Rows(); r++ {
			nr := make([]float64, w)
			cr := make([]string, w)
			for c, col := range tbl.Schema.Cols {
				if col.IsNumeric() {
					nr[c] = p.NumCol(c)[r]
				} else {
					cr[c] = tbl.Dict.Value(p.CatCol(c)[r])
				}
			}
			num = append(num, nr)
			cat = append(cat, cr)
		}
	}
	return num, cat
}

// buildTable replays rows [lo, hi) through a fresh Builder — the offline
// ingest path the live pipeline must match bit for bit.
func buildTable(t testing.TB, schema *table.Schema, rowsPerPart int, num [][]float64, cat [][]string, lo, hi int) *table.Table {
	t.Helper()
	b, err := table.NewBuilder(schema, rowsPerPart)
	if err != nil {
		t.Fatal(err)
	}
	for i := lo; i < hi; i++ {
		if err := b.Append(num[i], cat[i]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Finish()
}

const (
	fixTotalRows   = 4100
	fixRowsPerPart = 400
	fixBaseRows    = 1600 // 4 full base partitions
)

// ingestFixture builds the shared scenario: a trained base system over the
// first fixBaseRows rows, the remaining rows to stream, and the offline
// reference table holding all rows.
func ingestFixture(t testing.TB, trainN int) (base *core.System, ref *table.Table, num [][]float64, cat [][]string, queries []*query.Query) {
	t.Helper()
	ds, err := dataset.Aria(dataset.Config{Rows: fixTotalRows, Parts: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	num, cat = fixtureRows(t, ds.Table)
	ref = buildTable(t, ds.Table.Schema, fixRowsPerPart, num, cat, 0, len(num))
	baseTable := buildTable(t, ds.Table.Schema, fixRowsPerPart, num, cat, 0, fixBaseRows)
	base, err = core.New(baseTable, core.Options{Workload: ds.Workload, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := query.NewGenerator(ds.Workload, baseTable, 42)
	if err != nil {
		t.Fatal(err)
	}
	if trainN > 0 {
		if err := base.Train(gen.SampleN(trainN), nil); err != nil {
			t.Fatal(err)
		}
	}
	return base, ref, num, cat, gen.SampleN(8)
}

// appendRange streams rows [lo, hi) through the pipeline in uneven batch
// sizes, so batches straddle partition seals.
func appendRange(t testing.TB, p *Pipeline, num [][]float64, cat [][]string, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; {
		n := 137
		if i+n > hi {
			n = hi - i
		}
		if err := p.AppendRows(num[i:i+n], cat[i:i+n]); err != nil {
			t.Fatal(err)
		}
		i += n
	}
}

// TestOfflineEquivalence is the tentpole's acceptance gate: streaming rows
// through WAL → memtable → segments must reproduce the offline build bit
// for bit — same partition boundaries, same dictionary codes, same cell
// values — and exact query answers over the frozen pipeline must match the
// offline table at every parallelism.
func TestOfflineEquivalence(t *testing.T) {
	base, ref, num, cat, queries := ingestFixture(t, 12)
	pipe, err := Open(Config{
		Dir:         t.TempDir(),
		RowsPerPart: fixRowsPerPart,
		ManualFlush: true, // deterministic segment boundaries for the comparison
	}, base)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	// Stream in three legs with explicit flushes between, so the data ends
	// up spread across multiple segments plus a frozen tail.
	appendRange(t, pipe, num, cat, fixBaseRows, 2500)
	if err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}
	appendRange(t, pipe, num, cat, 2500, 3300)
	if err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}
	appendRange(t, pipe, num, cat, 3300, len(num))
	if err := pipe.FreezeSource(); err != nil {
		t.Fatal(err)
	}
	if err := pipe.AppendRow(num[0], cat[0]); err == nil {
		t.Fatal("append after freeze must fail")
	}

	// Dictionary: byte-identical value sequence (same codes for same
	// values, assigned in the same first-seen order).
	if got, want := pipe.TableDict().Values(), ref.Dict.Values(); !reflect.DeepEqual(got, want) {
		t.Fatalf("dictionary diverged: %d values vs %d", len(got), len(want))
	}
	// Partitions: same count, same boundaries, same encoded cells.
	if got, want := pipe.NumParts(), ref.NumParts(); got != want {
		t.Fatalf("live view has %d partitions, offline build has %d", got, want)
	}
	if got, want := pipe.NumRows(), ref.NumRows(); got != want {
		t.Fatalf("live view has %d rows, offline build has %d", got, want)
	}
	for i := 0; i < ref.NumParts(); i++ {
		lp, err := pipe.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		ln, lc := lp.DecodedCols()
		rn, rc := ref.Parts[i].DecodedCols()
		if !reflect.DeepEqual(ln, rn) || !reflect.DeepEqual(lc, rc) {
			t.Fatalf("partition %d differs from the offline build", i)
		}
	}

	// Exact answers over the frozen snapshot must match the offline table
	// bit for bit at Parallelism 1, 3 and GOMAXPROCS.
	refSys, err := core.New(ref, core.Options{Workload: base.Opts.Workload, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	snap, version, err := pipe.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if version != 3 {
		t.Fatalf("snapshot version %d, want 3 (three segments cut)", version)
	}
	if snap.Picker == nil {
		t.Fatal("snapshot lost the trained picker")
	}
	for _, par := range []int{1, 3, runtime.GOMAXPROCS(0)} {
		ssys, rsys := *snap, *refSys
		ssys.Opts.Parallelism, rsys.Opts.Parallelism = par, par
		for qi, q := range queries {
			got, err := ssys.RunExact(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := rsys.RunExact(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Values, want.Values) || !reflect.DeepEqual(got.Labels, want.Labels) {
				t.Fatalf("parallelism %d query %d: exact answer diverges from offline build", par, qi)
			}
		}
	}
	// Approximate answers must be bit-identical across parallelism too.
	for qi, q := range queries {
		s1 := *snap
		s1.Opts.Parallelism = 1
		want, err := s1.Run(q, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{3, runtime.GOMAXPROCS(0)} {
			sp := *snap
			sp.Opts.Parallelism = par
			got, err := sp.Run(q, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Values, want.Values) {
				t.Fatalf("query %d: approximate answer differs at parallelism %d", qi, par)
			}
		}
	}
}

// TestCrashRecovery drives the pipeline through flushes and un-flushed
// appends, then simulates crashes — abrupt handle drop, torn WAL tails at
// randomized offsets, stray temporaries and stale logs from every
// flush-protocol window — and asserts recovery restores exactly the
// acknowledged rows, truncates torn bytes, and reproduces the dictionary.
func TestCrashRecovery(t *testing.T) {
	base, _, num, cat, _ := ingestFixture(t, 0)
	dir := t.TempDir()
	open := func() *Pipeline {
		p, err := Open(Config{Dir: dir, RowsPerPart: fixRowsPerPart, ManualFlush: true}, base)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Phase 1: two segments flushed, 300 rows acknowledged into wal-2.
	pipe := open()
	appendRange(t, pipe, num, cat, fixBaseRows, 2400)
	if err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}
	appendRange(t, pipe, num, cat, 2400, 3200)
	if err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}
	appendRange(t, pipe, num, cat, 3200, 3500)
	wantDict := append([]string(nil), pipe.TableDict().Values()...)
	if err := pipe.Close(); err != nil { // crash-consistent: no flush on close
		t.Fatal(err)
	}

	verify := func(label string, p *Pipeline, hi int) {
		t.Helper()
		if got, want := p.NumRows(), base.Source.NumRows()+(hi-fixBaseRows); got != want {
			t.Fatalf("%s: recovered view has %d rows, want %d", label, got, want)
		}
		// Spot-check the last recovered row cell by cell through the live
		// view's final partition.
		last, err := p.Read(p.NumParts() - 1)
		if err != nil {
			t.Fatal(err)
		}
		r := last.Rows() - 1
		for c, col := range p.TableSchema().Cols {
			if col.IsNumeric() {
				if got, want := last.NumCol(c)[r], num[hi-1][c]; got != want && !(got != got && want != want) {
					t.Fatalf("%s: last row column %d = %v, want %v", label, c, got, want)
				}
			} else if got, want := p.TableDict().Value(last.CatCol(c)[r]), cat[hi-1][c]; got != want {
				t.Fatalf("%s: last row column %d = %q, want %q", label, c, got, want)
			}
		}
	}

	// Crash 1: clean handle drop. Everything acknowledged must be back.
	pipe = open()
	if st := pipe.Stats(); st.Segments != 2 || st.RecoveredRows != 300 {
		t.Fatalf("recovered %d segments / %d wal rows, want 2 / 300", st.Segments, st.RecoveredRows)
	}
	verify("clean drop", pipe, 3500)
	if got := pipe.TableDict().Values(); !reflect.DeepEqual(got, wantDict) {
		t.Fatalf("dictionary not reproduced: %d values, want %d", len(got), len(wantDict))
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash 2: torn tails. Cut the live log at randomized offsets inside
	// its final frame: acknowledged full frames survive, the torn bytes
	// are truncated away on recovery.
	walPath := filepath.Join(dir, walName(2))
	pristine, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	_, clean, err := ReadWAL(bytes.NewReader(pristine))
	if err != nil {
		t.Fatal(err)
	}
	if clean != int64(len(pristine)) {
		t.Fatalf("pristine wal has torn bytes already: clean %d of %d", clean, len(pristine))
	}
	for _, cut := range []int{len(pristine) - 1, len(pristine) - 7, int(clean) - len(pristine)/3, 5} {
		if cut < 0 || cut >= len(pristine) {
			continue
		}
		if err := os.WriteFile(walPath, pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantRecs, wantClean, err := ReadWAL(bytes.NewReader(pristine[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		wantRows := 0
		for _, rec := range wantRecs {
			rn, _, err := DecodeRows(rec, base.Source.TableSchema())
			if err != nil {
				t.Fatal(err)
			}
			wantRows += len(rn)
		}
		p := open()
		if st := p.Stats(); int(st.RecoveredRows) != wantRows {
			t.Fatalf("cut %d: recovered %d rows, want %d", cut, st.RecoveredRows, wantRows)
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		// No torn record may survive on disk: the file must have been
		// truncated to the clean offset before the new handle appended.
		onDisk, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(onDisk)) != wantClean {
			t.Fatalf("cut %d: wal is %d bytes after recovery, want clean offset %d", cut, len(onDisk), wantClean)
		}
	}
	if err := os.WriteFile(walPath, pristine, 0o644); err != nil {
		t.Fatal(err)
	}

	// Crash 3: every flush-window artifact at once — a stray segment
	// temporary, a stale pre-rotation log, and a premature next log (the
	// crash windows of the flush protocol). Recovery must sweep them and
	// still restore the acknowledged rows.
	if err := os.WriteFile(filepath.Join(dir, segmentName(2)+".tmp"), []byte("half-written segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walName(1)), frames([]byte("stale")), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walName(3)), frames([]byte("premature")), 0o644); err != nil {
		t.Fatal(err)
	}
	pipe = open()
	if st := pipe.Stats(); st.Segments != 2 || st.RecoveredRows != 300 {
		t.Fatalf("after sweep: recovered %d segments / %d rows, want 2 / 300", st.Segments, st.RecoveredRows)
	}
	verify("swept crash window", pipe, 3500)
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	for _, stray := range []string{segmentName(2) + ".tmp", walName(1), walName(3)} {
		if _, err := os.Stat(filepath.Join(dir, stray)); !os.IsNotExist(err) {
			t.Fatalf("stray %s survived recovery", stray)
		}
	}

	// A gap in the segment run is tampering, not a crash shape: refuse.
	if err := os.Rename(filepath.Join(dir, segmentName(0)), filepath.Join(dir, segmentName(7))); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir, RowsPerPart: fixRowsPerPart, ManualFlush: true}, base); err == nil {
		t.Fatal("non-contiguous segment run must fail recovery")
	}
}

// TestRecoveryResumesAppends recovers a directory and keeps appending: the
// recovered memtable, dictionary and WAL must be exactly where the crash
// left them, so the stream continues as if uninterrupted and still matches
// the offline build.
func TestRecoveryResumesAppends(t *testing.T) {
	base, ref, num, cat, _ := ingestFixture(t, 0)
	dir := t.TempDir()
	pipe, err := Open(Config{Dir: dir, RowsPerPart: fixRowsPerPart, ManualFlush: true}, base)
	if err != nil {
		t.Fatal(err)
	}
	appendRange(t, pipe, num, cat, fixBaseRows, 2700)
	if err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}
	appendRange(t, pipe, num, cat, 2700, 3100)
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}

	pipe, err = Open(Config{Dir: dir, RowsPerPart: fixRowsPerPart, ManualFlush: true}, base)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	appendRange(t, pipe, num, cat, 3100, len(num))
	if err := pipe.FreezeSource(); err != nil {
		t.Fatal(err)
	}
	if got, want := pipe.TableDict().Values(), ref.Dict.Values(); !reflect.DeepEqual(got, want) {
		t.Fatal("dictionary diverged across recovery")
	}
	if got, want := pipe.NumParts(), ref.NumParts(); got != want {
		t.Fatalf("%d partitions, want %d", got, want)
	}
	for i := 0; i < ref.NumParts(); i++ {
		lp, err := pipe.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		ln, lc := lp.DecodedCols()
		rn, rc := ref.Parts[i].DecodedCols()
		if !reflect.DeepEqual(ln, rn) || !reflect.DeepEqual(lc, rc) {
			t.Fatalf("partition %d differs from the offline build after recovery", i)
		}
	}
}

// TestBackgroundFlushPublishes exercises the automatic path: background
// flushes under concurrent appends, publishing versioned snapshots whose
// row counts only ever grow.
func TestBackgroundFlushPublishes(t *testing.T) {
	base, _, num, cat, _ := ingestFixture(t, 12)
	var mu sync.Mutex
	var versions []int
	var rowCounts []int
	pipe, err := Open(Config{
		Dir:          t.TempDir(),
		RowsPerPart:  fixRowsPerPart,
		CommitWindow: 200 * time.Microsecond,
		OnPublish: func(sys *core.System, version int) {
			mu.Lock()
			versions = append(versions, version)
			rowCounts = append(rowCounts, sys.Source.NumRows())
			mu.Unlock()
		},
	}, base)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	var wg sync.WaitGroup
	const writers = 4
	per := (len(num) - fixBaseRows) / writers
	for wkr := 0; wkr < writers; wkr++ {
		lo := fixBaseRows + wkr*per
		hi := lo + per
		if wkr == writers-1 {
			hi = len(num)
		}
		wg.Add(1)
		go func(lo, hi int) { //lint:nakedgo-ok test drives concurrent writers; joined on wg below
			defer wg.Done()
			for i := lo; i < hi; i += 50 {
				end := i + 50
				if end > hi {
					end = hi
				}
				if err := pipe.AppendRows(num[i:end], cat[i:end]); err != nil {
					t.Error(err)
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if err := pipe.FreezeSource(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(versions) == 0 {
		t.Fatal("no snapshots published")
	}
	for i := range versions {
		if i > 0 && versions[i] != versions[i-1]+1 {
			t.Fatalf("versions not consecutive: %v", versions)
		}
		if i > 0 && rowCounts[i] < rowCounts[i-1] {
			t.Fatalf("published row counts regressed: %v", rowCounts)
		}
	}
	last := rowCounts[len(rowCounts)-1]
	if want := base.Source.NumRows() + (len(num) - fixBaseRows); last != want {
		t.Fatalf("final snapshot has %d rows, want %d", last, want)
	}
	st := pipe.Stats()
	if st.PendingRows != 0 {
		t.Fatalf("%d rows pending after freeze", st.PendingRows)
	}
	if int(st.RowsAppended) != len(num)-fixBaseRows {
		t.Fatalf("counted %d appended rows, want %d", st.RowsAppended, len(num)-fixBaseRows)
	}
}

func TestOpenRejectsStatslessBase(t *testing.T) {
	base, _, _, _, _ := ingestFixture(t, 0)
	bare := &core.System{Source: base.Source, Opts: base.Opts}
	if _, err := Open(Config{Dir: t.TempDir()}, bare); err == nil {
		t.Fatal("base without stats must be rejected")
	}
}
