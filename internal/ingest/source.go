package ingest

import (
	"errors"
	"fmt"
	"sort"

	"ps3/internal/store"
	"ps3/internal/table"
)

// multiSource concatenates partition sources into one global partition
// index space: the base table's source followed by each flushed segment
// (and, in published snapshots, a resident tail table). Global partition
// IDs are positional, so partition old+i of the concatenation is simply
// partition i of the segment that starts at old — no translation tables,
// just offset arithmetic.
//
// A multiSource is immutable once built; each published snapshot gets its
// own. Reads delegate to the owning sub-source, which carries its own
// cache and I/O accounting.
type multiSource struct {
	schema *table.Schema
	dict   *table.Dict
	subs   []table.PartitionSource
	starts []int // starts[j] = global index of subs[j]'s first partition
	parts  int
	rows   int
	bytes  int
}

// newMultiSource concatenates subs in order. dict is the dictionary the
// concatenation serves — the live dictionary snapshot, a superset of every
// sub-source's own (segment dictionaries are growing prefixes of it).
func newMultiSource(schema *table.Schema, dict *table.Dict, subs ...table.PartitionSource) *multiSource {
	m := &multiSource{schema: schema, dict: dict, subs: subs}
	for _, s := range subs {
		m.starts = append(m.starts, m.parts)
		m.parts += s.NumParts()
		m.rows += s.NumRows()
		m.bytes += s.TotalBytes()
	}
	return m
}

func (m *multiSource) TableSchema() *table.Schema { return m.schema }
func (m *multiSource) TableDict() *table.Dict     { return m.dict }
func (m *multiSource) NumParts() int              { return m.parts }
func (m *multiSource) NumRows() int               { return m.rows }
func (m *multiSource) TotalBytes() int            { return m.bytes }

func (m *multiSource) Read(i int) (*table.Partition, error) {
	if i < 0 || i >= m.parts {
		return nil, fmt.Errorf("ingest: partition %d out of range [0, %d)", i, m.parts)
	}
	// First sub-source starting after i, minus one: the owner.
	j := sort.Search(len(m.starts), func(k int) bool { return m.starts[k] > i }) - 1
	q, err := m.subs[j].Read(i - m.starts[j])
	if err != nil {
		// A segment's quarantine error names its local partition id; callers
		// (core's degradation loop) drop by global id, so renumber.
		var qe *store.QuarantineError
		if errors.As(err, &qe) && qe.Part != i {
			return nil, &store.QuarantineError{Part: i, Err: err}
		}
	}
	return q, err
}

func (m *multiSource) ResetIO() {
	for _, s := range m.subs {
		s.ResetIO()
	}
}

func (m *multiSource) IOStats() (parts int64, bytes int64) {
	for _, s := range m.subs {
		p, b := s.IOStats()
		parts += p
		bytes += b
	}
	return parts, bytes
}

// Health aggregates quarantine state across sub-sources, renumbering each
// sub-source's local partition ids into the concatenation's global index
// space (core's degradation loop drops by global id). Sub-sources without
// health reporting — resident tables, the base when memory-backed — are
// trivially healthy.
func (m *multiSource) Health() store.HealthStats {
	var agg store.HealthStats
	for j, s := range m.subs {
		h, ok := s.(interface{ Health() store.HealthStats })
		if !ok {
			continue
		}
		hs := h.Health()
		agg.CorruptRetries += hs.CorruptRetries
		for _, p := range hs.QuarantinedParts {
			agg.QuarantinedParts = append(agg.QuarantinedParts, m.starts[j]+p)
		}
	}
	sort.Ints(agg.QuarantinedParts)
	return agg
}
