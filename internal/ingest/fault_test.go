package ingest

import (
	"errors"
	"path/filepath"
	"testing"

	"ps3/internal/core"
	"ps3/internal/fault"
	"ps3/internal/query"
	"ps3/internal/store"
)

// faultPipeline opens a manual-flush pipeline whose every disk operation
// goes through a fresh injector, capturing published snapshots.
func faultPipeline(t *testing.T) (p *Pipeline, inj *fault.Injector, published *[]*core.System, num [][]float64, cat [][]string, queries []*query.Query) {
	t.Helper()
	base, _, num, cat, queries := ingestFixture(t, 12)
	inj = fault.NewInjector(fault.OS, 1)
	var snaps []*core.System
	p, err := Open(Config{
		Dir:         filepath.Join(t.TempDir(), "ing"),
		RowsPerPart: fixRowsPerPart,
		ManualFlush: true,
		FS:          inj,
		OnPublish:   func(sys *core.System, _ int) { snaps = append(snaps, sys) },
	}, base)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, inj, &snaps, num, cat, queries
}

// answers runs q exactly on sys and returns the grouped values.
func answers(t *testing.T, sys *core.System, q *query.Query) map[string][]float64 {
	t.Helper()
	res, err := sys.RunExact(q)
	if err != nil {
		t.Fatal(err)
	}
	return res.Values
}

// TestFailedFlushKeepsPriorSnapshotLive: a flush that dies at its rename
// commit point poisons the pipeline — appends and flushes fail with the
// sticky error, Err() reports it — but the previously published snapshot
// keeps serving bit-identical answers, and every acknowledged row survives
// a crash-consistent close and clean reopen.
func TestFailedFlushKeepsPriorSnapshotLive(t *testing.T) {
	p, inj, published, num, cat, queries := faultPipeline(t)

	// Seal and flush one segment cleanly.
	appendRange(t, p, num, cat, fixBaseRows, fixBaseRows+fixRowsPerPart)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(*published) != 1 {
		t.Fatalf("published %d snapshots, want 1", len(*published))
	}
	v1 := (*published)[0]
	before := answers(t, v1, queries[0])

	// Kill the next flush at its commit point: the rename of segment 1.
	inj.AddRule(&fault.Rule{Op: fault.OpRename, Path: segmentName(1), FailAt: 1})
	acked := fixBaseRows + 2*fixRowsPerPart
	appendRange(t, p, num, cat, fixBaseRows+fixRowsPerPart, acked)
	err := p.Flush()
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("flush across rename fault: err = %v, want ErrInjected", err)
	}
	if p.Err() == nil {
		t.Fatal("Err() = nil after a failed flush")
	}
	if err := p.AppendRows(num[:1], cat[:1]); err == nil {
		t.Fatal("append succeeded on a poisoned pipeline")
	}
	if err := p.Flush(); err == nil {
		t.Fatal("flush succeeded on a poisoned pipeline")
	}
	if _, _, err := p.Snapshot(); err == nil {
		t.Fatal("Snapshot succeeded on a poisoned pipeline")
	}

	// The already published snapshot is untouched by the wreckage.
	after := answers(t, v1, queries[0])
	for g, want := range before {
		got, ok := after[g]
		if !ok {
			t.Fatalf("group %q vanished from the prior snapshot", g)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("group %q agg %d drifted after failed flush: %v vs %v", g, j, got[j], want[j])
			}
		}
	}

	// Crash-consistent close, then recovery on a clean filesystem: every
	// acknowledged row is in the single flushed segment or the surviving
	// WAL, exactly once.
	dir := p.cfg.Dir
	base := p.base
	if err := p.Close(); err != nil {
		t.Fatalf("crash-consistent close: %v", err)
	}
	inj.ClearRules()
	p2, err := Open(Config{Dir: dir, RowsPerPart: fixRowsPerPart, ManualFlush: true}, base)
	if err != nil {
		t.Fatalf("recovery after failed flush: %v", err)
	}
	defer p2.Close()
	if got := p2.NumRows(); got != acked {
		t.Fatalf("recovered NumRows = %d, want %d acknowledged rows", got, acked)
	}
	if st := p2.Stats(); st.RecoveredRows != int64(acked-fixBaseRows-fixRowsPerPart) {
		t.Fatalf("RecoveredRows = %d, want %d (rows past the one flushed segment)",
			st.RecoveredRows, acked-fixBaseRows-fixRowsPerPart)
	}
}

// TestPoisonedWALReportsErr: a WAL whose fsync fails never acknowledges the
// append, reports the sticky error through Pipeline.Err() (the signal
// serve's read-only mode watches), and refuses further appends — while
// Snapshot keeps building read-side views.
func TestPoisonedWALReportsErr(t *testing.T) {
	p, inj, _, num, cat, queries := faultPipeline(t)

	appendRange(t, p, num, cat, fixBaseRows, fixBaseRows+100)
	if err := p.Err(); err != nil {
		t.Fatalf("healthy pipeline: Err() = %v", err)
	}

	inj.AddRule(&fault.Rule{Op: fault.OpSync, Path: "wal-", FailAt: 1})
	if err := p.AppendRows(num[:1], cat[:1]); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append across fsync fault: err = %v, want ErrInjected", err)
	}
	if err := p.Err(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Err() = %v, want the WAL's injected fsync error", err)
	}
	if err := p.AppendRows(num[:1], cat[:1]); err == nil {
		t.Fatal("append succeeded on a poisoned WAL")
	}

	// Reads survive the write path dying: snapshots still build and serve.
	inj.ClearRules()
	sys, _, err := p.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot with poisoned WAL: %v", err)
	}
	if res, err := sys.Run(queries[0], 0.3); err != nil || len(res.Values) == 0 {
		t.Fatalf("query on snapshot: res=%v err=%v", res, err)
	}
}

// TestMultiSourceHealthRenumbers: quarantine state from a disk-backed
// segment surfaces through the published snapshot's source with global
// partition ids — both in Health() and in the QuarantineError a read
// returns — so core's degradation loop drops the right partition.
func TestMultiSourceHealthRenumbers(t *testing.T) {
	p, inj, published, num, cat, _ := faultPipeline(t)
	appendRange(t, p, num, cat, fixBaseRows, fixBaseRows+fixRowsPerPart)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	sys := (*published)[0]
	src := sys.Source
	baseParts := p.baseParts

	// Corrupt every read of the segment file; global partition baseParts is
	// the segment's local partition 0.
	inj.AddRule(&fault.Rule{Op: fault.OpRead, Path: segmentName(0), FailAt: 1, Corrupt: true})
	_, err := src.Read(baseParts)
	inj.ClearRules()
	var qe *store.QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("segment read across corruption: err = %v, want a quarantine error", err)
	}
	if qe.Part != baseParts {
		t.Fatalf("QuarantineError.Part = %d, want global id %d", qe.Part, baseParts)
	}

	ms, ok := src.(*multiSource)
	if !ok {
		t.Fatalf("published source is %T, want *multiSource", src)
	}
	hs := ms.Health()
	if len(hs.QuarantinedParts) != 1 || hs.QuarantinedParts[0] != baseParts {
		t.Fatalf("Health().QuarantinedParts = %v, want [%d]", hs.QuarantinedParts, baseParts)
	}

	// The base partitions and the segment's other partitions still serve.
	if _, err := src.Read(0); err != nil {
		t.Fatalf("base partition after segment quarantine: %v", err)
	}
}
