package ingest

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"ps3/internal/core"
	"ps3/internal/serve"
)

// BenchmarkIngestAppend measures acknowledged append throughput — WAL
// durability included — at both commit disciplines: synchronous fsync per
// batch and a group-commit window that amortizes the fsync across
// concurrent batches.
func BenchmarkIngestAppend(b *testing.B) {
	for _, window := range []time.Duration{0, 2 * time.Millisecond} {
		b.Run(fmt.Sprintf("window=%v", window), func(b *testing.B) {
			base, _, num, cat, _ := ingestFixture(b, 0)
			pipe, err := Open(Config{
				Dir:          b.TempDir(),
				RowsPerPart:  1 << 20, // no seals: isolate the WAL+memtable path
				CommitWindow: window,
				ManualFlush:  true,
			}, base)
			if err != nil {
				b.Fatal(err)
			}
			defer pipe.Close()
			const batch = 64
			span := len(num) - fixBaseRows
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := fixBaseRows + (i*batch)%(span-batch)
				if err := pipe.AppendRows(num[lo:lo+batch], cat[lo:lo+batch]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkIngestFlush measures the full flush path per segment: seal,
// stats extension, segment encode+fsync+rename, WAL rotation with re-log,
// and snapshot rebuild.
func BenchmarkIngestFlush(b *testing.B) {
	base, _, num, cat, _ := ingestFixture(b, 0)
	pipe, err := Open(Config{
		Dir:         b.TempDir(),
		RowsPerPart: fixRowsPerPart,
		ManualFlush: true,
	}, base)
	if err != nil {
		b.Fatal(err)
	}
	defer pipe.Close()
	span := len(num) - fixBaseRows
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		lo := fixBaseRows + (i*fixRowsPerPart)%(span-fixRowsPerPart)
		if err := pipe.AppendRows(num[lo:lo+fixRowsPerPart], cat[lo:lo+fixRowsPerPart]); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := pipe.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "flush-ms")
}

// BenchmarkIngestSwapStall serves queries through serve.Server while a
// background writer drives appends, flushes and hot snapshot swaps; the
// p99 query latency is the stall a reader can observe across a swap.
func BenchmarkIngestSwapStall(b *testing.B) {
	base, _, num, cat, queries := ingestFixture(b, 12)
	srv, err := serve.New(base, serve.Config{})
	if err != nil {
		b.Fatal(err)
	}
	pipe, err := Open(Config{
		Dir:          b.TempDir(),
		RowsPerPart:  fixRowsPerPart,
		CommitWindow: 200 * time.Microsecond,
		OnPublish: func(sys *core.System, version int) {
			_ = srv.Swap(sys)
		},
	}, base)
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // background writer; joined before the benchmark returns
		defer wg.Done()
		const batch = 64
		span := len(num) - fixBaseRows
		for i := 0; ; i += batch {
			select {
			case <-stop:
				return
			default:
			}
			lo := fixBaseRows + i%(span-batch)
			if err := pipe.AppendRows(num[lo:lo+batch], cat[lo:lo+batch]); err != nil {
				return // pipeline closing under us ends the writer
			}
		}
	}()
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := srv.Query(queries[i%len(queries)], 0.2); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	if err := pipe.Close(); err != nil {
		b.Fatal(err)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	b.ReportMetric(float64(p99.Microseconds())/1000, "p99-query-ms")
	b.ReportMetric(float64(srv.SnapshotVersion()-1), "swaps")
}
