package ingest

import (
	"fmt"

	"ps3/internal/table"
)

// memtable accumulates appended rows in columnar form and seals an
// immutable partition every rowsPerPart rows — the same seal rule as
// table.Builder, which is what keeps a streamed dataset bit-identical to
// the offline build of the same rows. It is not goroutine-safe; the
// pipeline guards it with its state lock.
type memtable struct {
	schema      *table.Schema
	rowsPerPart int
	// nextID is the global partition ID the next sealed partition gets:
	// base partitions + segment partitions + already-sealed memtable
	// partitions. Stats extension validates IDs against global positions,
	// so the memtable must hand them out in global order.
	nextID int

	num    [][]float64 // building columns, numeric side
	cat    [][]uint32  // building columns, categorical side (dict codes)
	rows   int
	sealed []*table.Partition
}

func newMemtable(s *table.Schema, rowsPerPart, nextID int) *memtable {
	m := &memtable{schema: s, rowsPerPart: rowsPerPart, nextID: nextID}
	m.reset()
	return m
}

// reset starts a fresh building partition. Fresh outer slices, not
// truncated ones: sealed partitions own their column slices forever.
func (m *memtable) reset() {
	m.num = make([][]float64, m.schema.NumCols())
	m.cat = make([][]uint32, m.schema.NumCols())
	m.rows = 0
}

// append adds one row (categorical cells already dictionary-coded) and
// seals a partition when the building one reaches rowsPerPart rows.
func (m *memtable) append(num []float64, cat []uint32) error {
	for c, col := range m.schema.Cols {
		if col.IsNumeric() {
			m.num[c] = append(m.num[c], num[c])
		} else {
			m.cat[c] = append(m.cat[c], cat[c])
		}
	}
	m.rows++
	if m.rows >= m.rowsPerPart {
		p, err := table.MakePartition(m.schema, m.nextID, m.rows, m.num, m.cat)
		if err != nil {
			return fmt.Errorf("ingest: seal memtable partition: %w", err)
		}
		m.sealed = append(m.sealed, p)
		m.nextID++
		m.reset()
	}
	return nil
}

// sealPartial seals the building rows as a final short partition — the
// freeze path, mirroring table.Builder.Finish. No-op when empty.
func (m *memtable) sealPartial() error {
	if m.rows == 0 {
		return nil
	}
	p, err := table.MakePartition(m.schema, m.nextID, m.rows, m.num, m.cat)
	if err != nil {
		return fmt.Errorf("ingest: seal partial memtable partition: %w", err)
	}
	m.sealed = append(m.sealed, p)
	m.nextID++
	m.reset()
	return nil
}

// takeSealed hands off the sealed partitions for flushing.
func (m *memtable) takeSealed() []*table.Partition {
	s := m.sealed
	m.sealed = nil
	return s
}

// tailPartition returns the building rows as a partition with the next
// global ID, or nil when empty. The column data is deep-copied so the
// returned partition stays immutable while appends continue.
func (m *memtable) tailPartition() (*table.Partition, error) {
	if m.rows == 0 {
		return nil, nil
	}
	num := make([][]float64, len(m.num))
	cat := make([][]uint32, len(m.cat))
	for c := range m.num {
		if m.num[c] != nil {
			num[c] = append([]float64(nil), m.num[c]...)
		}
		if m.cat[c] != nil {
			cat[c] = append([]uint32(nil), m.cat[c]...)
		}
	}
	p, err := table.MakePartition(m.schema, m.nextID, m.rows, num, cat)
	if err != nil {
		return nil, fmt.Errorf("ingest: snapshot memtable tail: %w", err)
	}
	return p, nil
}

// unflushedRows returns every row the memtable holds — sealed partitions
// first, then the building tail — decoded back to the append wire form
// (strings via dict). WAL rotation re-logs these into the fresh log so
// the old log can be deleted without losing acknowledged rows.
func (m *memtable) unflushedRows(dict *table.Dict) (num [][]float64, cat [][]string) {
	w := m.schema.NumCols()
	emit := func(rows int, numCols [][]float64, catCols [][]uint32) {
		for r := 0; r < rows; r++ {
			nr := make([]float64, w)
			cr := make([]string, w)
			for c, col := range m.schema.Cols {
				if col.IsNumeric() {
					nr[c] = numCols[c][r]
				} else {
					cr[c] = dict.Value(catCols[c][r])
				}
			}
			num = append(num, nr)
			cat = append(cat, cr)
		}
	}
	for _, p := range m.sealed {
		pn, pc := p.DecodedCols()
		emit(p.Rows(), pn, pc)
	}
	emit(m.rows, m.num, m.cat)
	return num, cat
}

// pendingRows counts rows not yet flushed to a segment.
func (m *memtable) pendingRows() int {
	n := m.rows
	for _, p := range m.sealed {
		n += p.Rows()
	}
	return n
}
