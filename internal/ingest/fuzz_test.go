package ingest

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"ps3/internal/table"
)

// fuzzSchema mirrors the shape real datasets have: a mix of numeric and
// categorical columns, so DecodeRows exercises both cell codecs.
func fuzzSchema() *table.Schema {
	return &table.Schema{Cols: []table.Column{
		{Name: "m", Kind: table.Numeric},
		{Name: "tenant", Kind: table.Categorical},
		{Name: "d", Kind: table.Date},
		{Name: "op", Kind: table.Categorical},
	}}
}

// FuzzReadWAL holds the WAL scan (and the row decode behind it) to the
// recovery contract on arbitrary bytes: never panic, never error on torn
// input, report a clean offset that really is a valid log prefix whose
// re-framing reproduces the input bytes, and keep DecodeRows total on
// every intact record.
func FuzzReadWAL(f *testing.F) {
	schema := fuzzSchema()
	rec1, err := EncodeRows(schema, [][]float64{{1.5, 0, 20200101, 0}}, [][]string{{"", "acme", "", "read"}})
	if err != nil {
		f.Fatal(err)
	}
	rec2, err := EncodeRows(schema,
		[][]float64{{math.NaN(), 0, 1, 0}, {-7.25, 0, 2, 0}},
		[][]string{{"", "globex", "", "write"}, {"", "", "", ""}})
	if err != nil {
		f.Fatal(err)
	}
	valid := AppendFrame(AppendFrame(nil, rec1), rec2)
	f.Add(valid)                                 // fully intact log
	f.Add(valid[:len(valid)-3])                  // torn payload
	f.Add(valid[:frameHeader-2])                 // torn header
	f.Add([]byte{})                              // empty log
	f.Add(AppendFrame(nil, []byte("not a row"))) // intact frame, bad record
	badCRC := append([]byte(nil), valid...)
	badCRC[len(badCRC)-1] ^= 0xFF
	f.Add(badCRC)
	var oversized [frameHeader]byte
	binary.LittleEndian.PutUint32(oversized[0:4], MaxRecordBytes+1)
	f.Add(append(append([]byte(nil), valid...), oversized[:]...))
	var zero [frameHeader]byte
	f.Add(append(append([]byte(nil), valid...), zero[:]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		records, clean, err := ReadWAL(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("in-memory scan must not error: %v", err)
		}
		if clean < 0 || clean > int64(len(data)) {
			t.Fatalf("clean offset %d outside [0, %d]", clean, len(data))
		}
		// clean must mark a real frame boundary: re-framing the decoded
		// records must reproduce data[:clean] byte for byte.
		var reframed []byte
		for _, r := range records {
			reframed = AppendFrame(reframed, r)
		}
		if !bytes.Equal(reframed, data[:clean]) {
			t.Fatalf("re-framed records do not reproduce the clean prefix (%d records, clean %d)", len(records), clean)
		}
		// Replay's second layer: row decode must be total on every intact
		// record — errors allowed, panics not (the panicfree analyzer
		// covers the statics, this covers the bounds checks).
		for _, r := range records {
			num, cat, err := DecodeRows(r, schema)
			if err != nil {
				continue
			}
			if len(num) != len(cat) || len(num) == 0 {
				t.Fatalf("decoded %d numeric / %d categorical rows", len(num), len(cat))
			}
		}
	})
}

// FuzzDecodeRows drives the row codec directly with arbitrary payloads —
// recovery reaches it only through intact CRC frames, but the decoder
// itself must be total regardless.
func FuzzDecodeRows(f *testing.F) {
	schema := fuzzSchema()
	rec, err := EncodeRows(schema, [][]float64{{1, 0, 2, 0}}, [][]string{{"", "a", "", "b"}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rec)
	f.Add([]byte{})
	f.Add(rec[:len(rec)-1])
	f.Add(append(append([]byte(nil), rec...), 0xAB))
	f.Fuzz(func(t *testing.T, data []byte) {
		num, cat, err := DecodeRows(data, schema)
		if err != nil {
			return
		}
		if len(num) != len(cat) || len(num) == 0 {
			t.Fatalf("decoded %d numeric / %d categorical rows", len(num), len(cat))
		}
		// A successful decode must re-encode to the identical payload:
		// the codec is a bijection on valid records, which is what makes
		// WAL re-logging at rotation safe.
		back, err := EncodeRows(schema, num, cat)
		if err != nil {
			t.Fatalf("re-encode of a decoded record failed: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("decode/encode round trip changed the payload")
		}
	})
}
