// Package ingest is PS3's live write path: a crash-safe write-ahead log
// feeding an in-memory memtable that flushes immutable segments in the
// paged store format, with each flush extending the statistics layer
// incrementally and publishing a new versioned snapshot for the serving
// layer to swap in.
//
// The moving parts, in row order:
//
//   - WAL: length+CRC32-C framed records, fsync-batched within a
//     configurable group-commit window; an append is acknowledged only
//     after its group reaches disk. Recovery truncates at the first torn
//     record.
//   - memtable: rows accumulate in columnar form and seal into an
//     immutable partition every RowsPerPart rows — the exact seal rule of
//     table.Builder, which is what makes a streamed dataset bit-identical
//     to the same rows ingested offline.
//   - segments: sealed partitions flush as ordinary store-format files
//     (the same per-column encoding chooser as offline writes), so a
//     segment is just more partitions behind the table.PartitionSource
//     seam.
//   - snapshots: each flush extends the statistics
//     (stats.TableStats.ExtendedWith), rebinds the trained picker
//     (core.System.Rebind) and hands the result to OnPublish — typically
//     serve.(*Server).Swap — so readers never block on writers.
//
// This package is on the nakedgo allowance: the WAL group-commit loop and
// the flush loop are lifecycle goroutines, joined on Close, not data-path
// fan-out (which still goes through internal/exec).
package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ps3/internal/fault"
)

// WAL frame layout: [length u32 LE][crc u32 LE][payload], where crc is
// CRC32-C (Castagnoli) of the payload — the same polynomial the store's
// block checksums use. A frame is intact iff the full payload is present
// and matches its checksum; everything after the first violation is a torn
// tail.
const frameHeader = 8

// MaxRecordBytes caps one WAL record's payload. The bound protects
// recovery from a corrupt length field allocating gigabytes, and is far
// above any row batch the pipeline writes.
const MaxRecordBytes = 16 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrWALClosed is returned by appends to a closed log.
var ErrWALClosed = errors.New("ingest: wal is closed")

// AppendFrame appends one framed record to dst and returns the extended
// slice.
func AppendFrame(dst, payload []byte) []byte {
	var h [frameHeader]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, h[:]...)
	return append(dst, payload...)
}

// ReadWAL scans a write-ahead log stream, returning every intact record
// payload in order and the byte offset just past the last intact frame. A
// torn tail — truncated header, truncated payload, zero or oversized
// length, or a checksum mismatch — ends the scan without error: that is
// the expected shape of a log cut by a crash, and recovery truncates the
// file at clean and replays the records. Only a real read error is
// returned.
func ReadWAL(r io.Reader) (records [][]byte, clean int64, err error) {
	br := bufio.NewReader(r)
	for {
		var h [frameHeader]byte
		if _, err := io.ReadFull(br, h[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return records, clean, nil
			}
			return records, clean, err
		}
		n := binary.LittleEndian.Uint32(h[0:4])
		want := binary.LittleEndian.Uint32(h[4:8])
		if n == 0 || n > MaxRecordBytes {
			return records, clean, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return records, clean, nil
			}
			return records, clean, err
		}
		if crc32.Checksum(payload, crcTable) != want {
			return records, clean, nil
		}
		records = append(records, payload)
		clean += int64(frameHeader) + int64(n)
	}
}

// WAL is a crash-safe framed log with group commit: Enqueue buffers a
// frame and assigns it a sequence number, a background loop (or the waiter
// itself, in synchronous mode) writes and fsyncs whole pending groups, and
// WaitDurable returns once the record's group reached disk. Batching
// amortizes fsync across concurrent appenders without ever acknowledging a
// record the disk has not seen.
type WAL struct {
	path   string
	window time.Duration
	f      fault.File

	// mu guards the pending group and the sequence counters; cond wakes
	// durability waiters after each group commit.
	mu      sync.Mutex
	cond    *sync.Cond
	pending []byte
	seq     uint64 // last enqueued record
	synced  uint64 // last durable record
	err     error  // sticky I/O error; poisons the log
	closed  bool

	// flushMu serializes group commits so frames reach the file in
	// sequence order.
	flushMu sync.Mutex

	wake chan struct{} // nil in synchronous mode
	done chan struct{}
	idle chan struct{} // closed when the commit loop exits
}

// OpenWAL opens (creating if absent) a log for appending. window > 0
// starts a group-commit loop that fsyncs pending frames every window;
// window <= 0 commits synchronously on every WaitDurable. The parent
// directory is fsynced so a freshly created log survives a crash.
func OpenWAL(path string, window time.Duration) (*WAL, error) {
	return OpenWALFS(fault.OS, path, window)
}

// OpenWALFS is OpenWAL with the filesystem seam explicit; fault-injection
// tests pass an *fault.Injector to script fsync and write failures.
func OpenWALFS(fsys fault.FS, path string, window time.Duration) (*WAL, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syncDir(fsys, filepath.Dir(path)); err != nil {
		f.Close()
		return nil, fmt.Errorf("ingest: wal %s: %w", path, err)
	}
	w := &WAL{path: path, window: window, f: f}
	w.cond = sync.NewCond(&w.mu)
	if window > 0 {
		w.wake = make(chan struct{}, 1)
		w.done = make(chan struct{})
		w.idle = make(chan struct{})
		go w.commitLoop()
	}
	return w, nil
}

// Enqueue frames payload into the pending group and returns its sequence
// number; the record is durable once WaitDurable(seq) returns. Callers
// needing ordering against other state (the pipeline orders WAL frames
// with dictionary code assignment) enqueue under their own lock and wait
// outside it.
func (w *WAL) Enqueue(payload []byte) (uint64, error) {
	if len(payload) == 0 {
		return 0, errors.New("ingest: empty wal record")
	}
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("ingest: wal record of %d bytes exceeds the %d cap", len(payload), MaxRecordBytes)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, ErrWALClosed
	}
	w.pending = AppendFrame(w.pending, payload)
	w.seq++
	if w.wake != nil {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	return w.seq, nil
}

// WaitDurable blocks until record seq is fsynced or the log fails.
func (w *WAL) WaitDurable(seq uint64) error {
	if w.wake == nil {
		w.commit() // synchronous mode: the waiter performs the commit
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.synced < seq && w.err == nil {
		w.cond.Wait()
	}
	return w.err
}

// Append writes one record and returns once it is durable.
func (w *WAL) Append(payload []byte) error {
	seq, err := w.Enqueue(payload)
	if err != nil {
		return err
	}
	return w.WaitDurable(seq)
}

// Err reports the log's sticky I/O error, if any. A failed write or fsync
// poisons the log permanently: acknowledged records stay durable, but no
// further record will be.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Sync forces any pending group to disk now.
func (w *WAL) Sync() error {
	w.commit()
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// commit writes and fsyncs the pending buffer: one group commit. Frames
// buffered while the write is in flight land in the next group.
func (w *WAL) commit() {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	buf, mark := w.pending, w.seq
	w.pending = nil
	failed := w.err != nil
	w.mu.Unlock()
	if failed || len(buf) == 0 {
		return
	}
	_, err := w.f.Write(buf)
	if err == nil {
		err = w.f.Sync()
	}
	w.mu.Lock()
	if err != nil {
		w.err = fmt.Errorf("ingest: wal %s: %w", w.path, err)
	} else if mark > w.synced {
		w.synced = mark
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// commitLoop batches appends within the group-commit window: it wakes on
// the first enqueue, lets the group accumulate for one window, commits,
// and goes back to sleep.
func (w *WAL) commitLoop() {
	defer close(w.idle)
	for {
		select {
		case <-w.done:
			return
		case <-w.wake:
		}
		timer := time.NewTimer(w.window)
		select {
		case <-w.done:
			timer.Stop()
			w.commit()
			return
		case <-timer.C:
		}
		w.commit()
	}
}

// Close commits everything pending, stops the group-commit loop and closes
// the file. Records enqueued before Close are durable when it returns
// (absent I/O errors, which it reports).
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.closed = true
	w.mu.Unlock()
	if w.done != nil {
		close(w.done)
		<-w.idle
	}
	w.commit()
	w.mu.Lock()
	err := w.err
	w.mu.Unlock()
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("ingest: wal %s: %w", w.path, cerr)
	}
	return err
}
