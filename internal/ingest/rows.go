package ingest

import (
	"encoding/binary"
	"fmt"
	"math"

	"ps3/internal/table"
)

// maxCellBytes caps a single categorical value inside a WAL record. It
// bounds what a corrupt length prefix can make the decoder allocate;
// real values are short strings.
const maxCellBytes = 1 << 20

// WAL record payload layout (all integers little-endian):
//
//	u32 rowCount
//	rowCount times, one cell per schema column in order:
//	  numeric column:      f64 bits (IEEE-754, so NaN round-trips)
//	  categorical column:  u32 byteLen, then byteLen raw bytes
//
// Values travel as strings, not dictionary codes: the dictionary is
// in-memory state rebuilt deterministically at recovery by re-coding the
// replayed rows in log order, so the log stays self-contained.

// EncodeRows serializes a batch of rows into one WAL record payload.
// num[i][c] is consulted for numeric columns and cat[i][c] for categorical
// ones, mirroring table.Builder.Append; each row's slices must span the
// full schema width.
func EncodeRows(s *table.Schema, num [][]float64, cat [][]string) ([]byte, error) {
	if len(num) != len(cat) {
		return nil, fmt.Errorf("ingest: %d numeric rows vs %d categorical rows", len(num), len(cat))
	}
	if len(num) == 0 {
		return nil, fmt.Errorf("ingest: empty row batch")
	}
	w := len(s.Cols)
	buf := make([]byte, 4, 4+len(num)*w*8)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(num)))
	var scratch [8]byte
	for i := range num {
		if len(num[i]) != w || len(cat[i]) != w {
			return nil, fmt.Errorf("ingest: row %d has %d numeric / %d categorical cells, want %d", i, len(num[i]), len(cat[i]), w)
		}
		for c, col := range s.Cols {
			if col.IsNumeric() {
				binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(num[i][c]))
				buf = append(buf, scratch[:8]...)
				continue
			}
			v := cat[i][c]
			if len(v) > maxCellBytes {
				return nil, fmt.Errorf("ingest: row %d column %q value of %d bytes exceeds the %d cap", i, col.Name, len(v), maxCellBytes)
			}
			binary.LittleEndian.PutUint32(scratch[:4], uint32(len(v)))
			buf = append(buf, scratch[:4]...)
			buf = append(buf, v...)
		}
	}
	return buf, nil
}

// DecodeRows parses one WAL record payload back into rows. It is the
// recovery-facing half of EncodeRows and must never panic on corrupt
// input (the fuzzer and the panicfree linter hold it to that): every
// length is bounds-checked against the remaining payload, and trailing
// bytes after the declared rows are an error.
func DecodeRows(payload []byte, s *table.Schema) (num [][]float64, cat [][]string, err error) {
	if len(payload) < 4 {
		return nil, nil, fmt.Errorf("ingest: record of %d bytes is shorter than its row count", len(payload))
	}
	n := int(binary.LittleEndian.Uint32(payload[0:4]))
	rest := payload[4:]
	w := len(s.Cols)
	// Cheapest possible row is all-numeric (8 bytes/cell) or all-empty
	// categorical (4 bytes/cell); either way ≥ 4*w bytes. Reject absurd
	// counts before allocating.
	if n == 0 || w > 0 && n > len(rest)/(4*w) {
		return nil, nil, fmt.Errorf("ingest: record declares %d rows but holds %d bytes", n, len(rest))
	}
	num = make([][]float64, n)
	cat = make([][]string, n)
	for i := 0; i < n; i++ {
		nr := make([]float64, w)
		cr := make([]string, w)
		for c, col := range s.Cols {
			if col.IsNumeric() {
				if len(rest) < 8 {
					return nil, nil, fmt.Errorf("ingest: record truncated in row %d column %q", i, col.Name)
				}
				nr[c] = math.Float64frombits(binary.LittleEndian.Uint64(rest[0:8]))
				rest = rest[8:]
				continue
			}
			if len(rest) < 4 {
				return nil, nil, fmt.Errorf("ingest: record truncated in row %d column %q", i, col.Name)
			}
			vl := int(binary.LittleEndian.Uint32(rest[0:4]))
			rest = rest[4:]
			if vl > maxCellBytes || vl > len(rest) {
				return nil, nil, fmt.Errorf("ingest: row %d column %q declares a %d-byte value with %d bytes left", i, col.Name, vl, len(rest))
			}
			cr[c] = string(rest[:vl])
			rest = rest[vl:]
		}
		num[i] = nr
		cat[i] = cr
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("ingest: record has %d trailing bytes after %d rows", len(rest), n)
	}
	return num, cat, nil
}
