package mapiter_test

import (
	"testing"

	"ps3/internal/analyzers/analyzertest"
	"ps3/internal/analyzers/mapiter"
)

func TestMapIter(t *testing.T) {
	a := mapiter.New(mapiter.Config{Deterministic: func(path string) bool {
		return path == "det"
	}})
	analyzertest.Run(t, "testdata", a, "det", "free")
}
