// Package free sits outside the deterministic scope: its map ranges carry no
// ordered-output contract and are never flagged.
package free

// Keys returns the keys in arbitrary order, which is fine here.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
