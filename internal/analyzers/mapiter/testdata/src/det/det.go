// Package det carries the ordered-output contract in the mapiter fixtures.
package det

import "sort"

// Compare reproduces the PR-1 metrics.Compare bug shape: a float
// accumulation folded in raw map iteration order. The low-order bits of
// relSum depend on visit order, which flipped near-tie comparisons in greedy
// feature selection run to run before PR 1 fixed it.
func Compare(truth, est map[string][]float64) float64 {
	var relSum float64
	for g, tv := range truth { // want `range over map in Compare`
		ev := est[g]
		for j := range tv {
			d := ev[j] - tv[j]
			if d < 0 {
				d = -d
			}
			relSum += d
		}
	}
	return relSum
}

// CompareSorted is the fixed shape: collect keys, sort, then fold. The
// key-collect loop matches the analyzer's sorted-key idiom and needs no
// directive.
func CompareSorted(truth, est map[string][]float64) float64 {
	keys := make([]string, 0, len(truth))
	for g := range truth {
		keys = append(keys, g)
	}
	sort.Strings(keys)
	var relSum float64
	for _, g := range keys {
		tv, ev := truth[g], est[g]
		for j := range tv {
			d := ev[j] - tv[j]
			if d < 0 {
				d = -d
			}
			relSum += d
		}
	}
	return relSum
}

// Snapshot reaches a map range through an unexported helper, which inherits
// the contract transitively.
func Snapshot(m map[string]int) []string {
	return encode(m)
}

func encode(m map[string]int) []string {
	var out []string
	for k, v := range m { // want `range over map in encode`
		_ = v
		out = append(out, k)
	}
	return out
}

// Justified shows the escape hatch: the justification rides with the code.
func Justified(m map[int]int) int {
	n := 0
	//lint:mapiter-ok integer sum is exact and order-free
	for _, v := range m {
		n += v
	}
	return n
}

// dead is unreachable from the package API, so its map range is out of
// scope: nothing downstream can observe its iteration order.
func dead(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Total runs at package initialization, which is always on the contract.
var Total = func(m map[int]int) int {
	n := 0
	for _, v := range m { // want `range over map in package initializer`
		n += v
	}
	return n
}(map[int]int{1: 1})
