// Package mapiter flags `for range` over maps in code reachable from
// ordered-output paths.
//
// The repo's standing determinism contract — results bit-identical at every
// exec.Options.Parallelism, snapshot bytes stable run-to-run — dies quietly
// the moment a float accumulation, merge, or encode loop walks a Go map:
// iteration order is randomized per run, so low-order bits (or whole output
// orderings) start depending on it. Two such bugs shipped before PR 1 fixed
// them (stats selectivity folding, metrics.Compare — the latter flipped
// greedy feature selection run-to-run). This analyzer makes the contract
// mechanical.
//
// Scope: packages matched by Config.Deterministic (by default the ps3
// library — the root package and everything under internal/ — not cmd/ or
// examples/, which are presentation). Within a package, a map range is
// flagged when its enclosing function is reachable from the package's
// exported API (exported functions, all methods, init/main — see
// analysis.ExportedAPIRoot).
//
// One shape is recognized as safe without a directive: a loop that only
// collects the map's keys into a slice that is later passed to a sort call
// in the same function (`for k := range m { ks = append(ks, k) }` ...
// `sort.Strings(ks)`). Everything else needs either a fix or
// `//lint:mapiter-ok <why order cannot matter>`.
package mapiter

import (
	"go/ast"
	"go/types"
	"strings"

	"ps3/internal/analyzers/analysis"
)

// Config scopes the analyzer.
type Config struct {
	// Deterministic reports whether a package (by import path) carries the
	// ordered-output contract.
	Deterministic func(pkgPath string) bool
}

// DefaultConfig covers the ps3 library: the facade package and internal/*.
func DefaultConfig() Config {
	return Config{Deterministic: func(path string) bool {
		return path == "ps3" || strings.HasPrefix(path, "ps3/internal/")
	}}
}

// Analyzer is the repo-configured instance.
var Analyzer = New(DefaultConfig())

// New builds a mapiter analyzer with the given scope.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "mapiter",
		Doc:  "flags range-over-map in functions reachable from ordered-output paths (PR-1 determinism contract)",
		Run:  func(pass *analysis.Pass) error { return run(cfg, pass) },
	}
}

func run(cfg Config, pass *analysis.Pass) error {
	if cfg.Deterministic != nil && !cfg.Deterministic(pass.Pkg.Path()) {
		return nil
	}
	graph := analysis.BuildFuncGraph(pass)
	reached := graph.Reachable(analysis.ExportedAPIRoot)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			// Package-level declarations have no FuncDecl; anything there
			// runs on import, so treat it as reachable.
			fd := analysis.FuncFor(f, rs)
			if fd != nil && !reached[fd] {
				return true
			}
			if isSortedKeyCollect(pass, fd, rs) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map in %s: iteration order is nondeterministic on an ordered-output path; iterate a sorted key slice or justify with //lint:mapiter-ok",
				funcLabel(fd))
			return true
		})
	}
	return nil
}

func funcLabel(fd *ast.FuncDecl) string {
	if fd == nil {
		return "package initializer"
	}
	return fd.Name.Name
}

// isSortedKeyCollect recognizes the canonical safe idiom: the loop body's
// only statement appends the range key to a slice variable, and that
// variable later flows into a sort call within the same function.
func isSortedKeyCollect(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	if fd == nil || rs.Value != nil || len(rs.Body.List) != 1 {
		return false
	}
	keyIdent, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	dst, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	if src, ok := call.Args[0].(*ast.Ident); !ok || pass.Info.Uses[src] == nil ||
		pass.Info.Uses[src] != objOf(pass, dst) {
		return false
	}
	if arg, ok := call.Args[1].(*ast.Ident); !ok || objOf(pass, arg) != pass.Info.Defs[keyIdent] {
		return false
	}
	// The collected slice must reach a sort.* / slices.Sort* call after the
	// loop, still inside this function.
	dstObj := objOf(pass, dst)
	if dstObj == nil {
		return false
	}
	sorted := false
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || sorted {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pkgName, ok := pass.Info.Uses[pkg].(*types.PkgName); !ok ||
			(pkgName.Imported().Path() != "sort" && pkgName.Imported().Path() != "slices") {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && objOf(pass, arg) == dstObj {
			sorted = true
		}
		return true
	})
	return sorted
}

// objOf resolves an identifier to its object whether it defines or uses it.
func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.Info.Uses[id]; o != nil {
		return o
	}
	return pass.Info.Defs[id]
}
