package decodebypass_test

import (
	"testing"

	"ps3/internal/analyzers/analyzertest"
	"ps3/internal/analyzers/decodebypass"
)

func TestDecodeBypass(t *testing.T) {
	a := decodebypass.New(decodebypass.Config{
		PkgName:  "table",
		TypeName: "Partition",
		Fields:   []string{"Num", "Cat"},
		Allowed: map[string]bool{
			"(*table.Partition).NumCol": true,
			"table.MakePartition":       true,
		},
	})
	analyzertest.Run(t, "testdata", a, "table", "use")
}
