// Package decodebypass guards the lazy-decode seam introduced in PR 7.
//
// table.Partition keeps encoded columns in a private side store; the public
// Num/Cat fields stay nil for those columns so that nothing can observe a
// half-materialized slice without synchronization. The contract is that all
// reads go through the accessors (NumCol, CatCol, EncCol, Decoded,
// DecodedCols), which materialize lazily under a sync.Once and charge
// DecodeStats. Any direct touch of the raw fields — read, write, or
// composite-literal key — outside the whitelisted decode/materialize sites
// bypasses that seam: on an encoded partition it sees nil where data exists,
// and on a shared partition it races with materialization.
//
// The analyzer flags every selector of the protected fields and every keyed
// use in a Partition composite literal, in ordinary and _test.go files alike
// (tests poke representations more than anyone), except inside the functions
// named in Config.Allowed. Escape hatch: //lint:decodebypass-ok <reason>,
// for tests that assert the physical representation itself.
package decodebypass

import (
	"go/ast"
	"go/types"

	"ps3/internal/analyzers/analysis"
)

// Config identifies the protected struct and the sanctioned access sites.
type Config struct {
	// PkgName and TypeName name the protected struct by its defining
	// package's name and the type's name (the type may be unexported in
	// testdata fixtures, so matching is by name, not import path).
	PkgName  string
	TypeName string
	// Fields are the protected field names.
	Fields []string
	// Allowed holds types.Func.FullName() strings of the functions that
	// legitimately touch the raw fields: the accessors themselves, the
	// validated constructors, and the representation-size accounting.
	Allowed map[string]bool
}

// DefaultConfig protects table.Partition.Num/Cat, whitelisting only the
// decode path: the lazy accessors, the validated constructors, the builder's
// ingest append, and the two size accountants that price the representation.
func DefaultConfig() Config {
	return Config{
		PkgName:  "table",
		TypeName: "Partition",
		Fields:   []string{"Num", "Cat"},
		Allowed: map[string]bool{
			"(*ps3/internal/table.Partition).Cols":             true,
			"(*ps3/internal/table.Partition).NumCol":           true,
			"(*ps3/internal/table.Partition).CatCol":           true,
			"(*ps3/internal/table.Partition).Decoded":          true,
			"(*ps3/internal/table.Partition).DecodedCols":      true,
			"(*ps3/internal/table.Partition).SizeBytes":        true,
			"(*ps3/internal/table.Partition).EncodedSizeBytes": true,
			"(*ps3/internal/table.Builder).Append":             true,
			"ps3/internal/table.NewPartition":                  true,
			"ps3/internal/table.MakePartition":                 true,
			"ps3/internal/table.MakeEncodedPartition":          true,
		},
	}
}

// Analyzer is the repo-configured instance.
var Analyzer = New(DefaultConfig())

// New builds a decodebypass analyzer for the given protected struct.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:         "decodebypass",
		Doc:          "flags direct access to table.Partition.Num/Cat outside the whitelisted decode sites (PR-7 lazy-decode seam)",
		IncludeTests: true,
		Run:          func(pass *analysis.Pass) error { return run(cfg, pass) },
	}
}

func run(cfg Config, pass *analysis.Pass) error {
	protected := map[string]bool{}
	for _, f := range cfg.Fields {
		protected[f] = true
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel, ok := pass.Info.Selections[n]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				field, ok := sel.Obj().(*types.Var)
				if !ok || !protected[field.Name()] || !isProtectedStruct(cfg, sel.Recv()) {
					return true
				}
				if allowedSite(cfg, pass, f, n) {
					return true
				}
				pass.Reportf(n.Sel.Pos(),
					"direct access to %s.%s.%s bypasses the lazy-decode seam; use the accessors (NumCol/CatCol/EncCol/Decoded/DecodedCols) or justify with //lint:decodebypass-ok",
					cfg.PkgName, cfg.TypeName, field.Name())
			case *ast.CompositeLit:
				t := pass.TypeOf(n)
				if t == nil || !isProtectedStruct(cfg, t) {
					return true
				}
				if allowedSite(cfg, pass, f, n) {
					return true
				}
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || !protected[key.Name] {
						continue
					}
					pass.Reportf(key.Pos(),
						"composite literal sets %s.%s.%s directly, bypassing the validated constructors; use MakePartition/MakeEncodedPartition or justify with //lint:decodebypass-ok",
						cfg.PkgName, cfg.TypeName, key.Name)
				}
			}
			return true
		})
	}
	return nil
}

// isProtectedStruct reports whether t (possibly behind pointers) is the
// configured struct type.
func isProtectedStruct(cfg Config, t types.Type) bool {
	for {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == cfg.TypeName && obj.Pkg() != nil && obj.Pkg().Name() == cfg.PkgName
}

// allowedSite reports whether node n sits inside a whitelisted function.
func allowedSite(cfg Config, pass *analysis.Pass, f *ast.File, n ast.Node) bool {
	fd := analysis.FuncFor(f, n)
	if fd == nil {
		return false
	}
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	return cfg.Allowed[obj.FullName()]
}
