// Package table mirrors the protected Partition shape for the decodebypass
// fixtures: Num/Cat stay nil for encoded columns, so every read must go
// through the accessors or the validated constructor.
package table

// Partition mirrors the lazy-decode seam of the real table.Partition.
type Partition struct {
	Num [][]float64
	Cat [][]uint32
}

// NumCol is whitelisted: the accessor itself may touch the raw field.
func (p *Partition) NumCol(c int) []float64 { return p.Num[c] }

// CatCol is deliberately NOT whitelisted in the fixture config, so its raw
// read is flagged like any other bypass.
func (p *Partition) CatCol(c int) []uint32 {
	return p.Cat[c] // want `direct access to table.Partition.Cat`
}

// MakePartition is the whitelisted constructor: its composite literal and
// field writes are the sanctioned way to build a Partition.
func MakePartition(num [][]float64, cat [][]uint32) *Partition {
	return &Partition{Num: num, Cat: cat}
}

// RawLit builds a Partition literal outside the constructor.
func RawLit(num [][]float64) *Partition {
	return &Partition{Num: num} // want `composite literal sets table.Partition.Num`
}
