// Package use consumes partitions through and around the lazy-decode seam.
package use

import "table"

// Sum reads through the accessor: clean.
func Sum(p *table.Partition) float64 {
	var s float64
	for _, v := range p.NumCol(0) {
		s += v
	}
	return s
}

// Raw bypasses the seam and sees nil where an encoded column has data.
func Raw(p *table.Partition) []float64 {
	return p.Num[0] // want `direct access to table.Partition.Num`
}

// Asserted pokes the representation deliberately, with the reason attached.
func Asserted(p *table.Partition) bool {
	return p.Num[0] == nil //lint:decodebypass-ok asserts the physical representation itself
}
