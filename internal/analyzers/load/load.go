// Package load type-checks the module's packages for the analyzers without
// golang.org/x/tools/go/packages, which this repo cannot depend on (no
// module cache, no network). It leans on the go command for everything the
// toolchain already knows: `go list -json -export -deps` enumerates the
// packages matched by the patterns plus their full dependency closure, and
// — because -export compiles them — hands back an export-data file per
// dependency in the build cache. Each target package is then parsed from
// source and type-checked with go/types, importing dependencies through
// go/importer's gc lookup mode from those export files. The result is the
// same (Files, Pkg, Info) triple a go/analysis driver would provide.
//
// With -test, go list additionally emits test variants ("pkg [pkg.test]"
// recompilations including _test.go files and "pkg_test" external test
// packages); these load the same way, with the variant's ImportMap steering
// imports to recompiled dependencies, and carry TestFiles so the driver can
// restrict test-only analyzers to test files and avoid double-reporting.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// ImportPath is the package's import path; test variants carry the go
	// list form "path [path.test]".
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	// TestFiles is nil for primary packages; for test variants it holds the
	// base names of the _test.go files (the variant's non-test files were
	// already analyzed under the primary package).
	TestFiles map[string]bool
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir          string
	ImportPath   string
	Name         string
	ForTest      string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	ImportMap    map[string]string
	Standard     bool
	Incomplete   bool
	Error        *struct{ Err string }
}

// Load lists, parses, and type-checks the packages matched by patterns in
// dir (the module root). With includeTests, _test.go variants are loaded
// too. All packages share one FileSet so positions interleave correctly.
func Load(dir string, patterns []string, includeTests bool) ([]*Package, error) {
	modPath, err := goCmd(dir, "list", "-m")
	if err != nil {
		return nil, fmt.Errorf("load: resolving module path: %w", err)
	}
	modulePath := strings.TrimSpace(string(modPath))

	args := []string{"list", "-json", "-export", "-deps"}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	out, err := goCmd(dir, args...)
	if err != nil {
		return nil, fmt.Errorf("load: go list: %w", err)
	}

	exports := map[string]string{}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		q := p
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		switch {
		case p.Standard:
		case strings.HasSuffix(p.ImportPath, ".test"):
			// Synthesized test-main package: generated code, skip.
		case p.ImportPath == modulePath || strings.HasPrefix(p.ImportPath, modulePath+"/"):
			targets = append(targets, &q)
		case p.ForTest == modulePath || strings.HasPrefix(p.ForTest, modulePath+"/"):
			// External test packages ("pkg_test [pkg.test]").
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, lp := range targets {
		isVariant := lp.ForTest != ""
		if isVariant && !includeTests {
			continue
		}
		p, err := check(fset, lp, exports)
		if err != nil {
			return nil, err
		}
		if isVariant {
			p.TestFiles = map[string]bool{}
			for _, f := range lp.TestGoFiles {
				p.TestFiles[f] = true
			}
			for _, f := range lp.XTestGoFiles {
				p.TestFiles[f] = true
			}
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// check parses and type-checks one listed package against its dependencies'
// export data.
func check(fset *token.FileSet, lp *listPkg, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %w", lp.ImportPath, err)
		}
		files = append(files, f)
	}
	// One importer per package: test variants remap shared import paths to
	// recompiled dependencies via ImportMap, so the export-data cache keyed
	// by source path cannot be shared across packages.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := lp.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, err := conf.Check(strings.TrimSuffix(strings.Split(lp.ImportPath, " ")[0], "_test"), fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{ImportPath: lp.ImportPath, Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}

// goCmd runs the go tool in dir and returns stdout, folding stderr into the
// error.
func goCmd(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			return nil, err
		}
		return nil, errors.New(msg)
	}
	return out, nil
}
