package nakedgo_test

import (
	"testing"

	"ps3/internal/analyzers/analyzertest"
	"ps3/internal/analyzers/nakedgo"
)

func TestNakedGo(t *testing.T) {
	a := nakedgo.New(nakedgo.Config{Allowed: func(path string) bool {
		return path == "pool" || path == "flush"
	}})
	analyzertest.Run(t, "testdata", a, "worker", "pool", "flush", "flushout")
}
