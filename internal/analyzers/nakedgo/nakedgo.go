// Package nakedgo confines goroutine creation to the three packages that own
// concurrency: internal/exec (the bounded worker pool with deterministic
// ordered merges, PRs 1–2), internal/serve (the request layer that
// multiplexes onto it), and internal/ingest (whose WAL group-commit and
// flush loops are lifecycle goroutines joined on Close, not data-path
// fan-out).
//
// Everything else must express fan-out through exec's primitives — that is
// what makes "bit-identical at every Parallelism" checkable at one choke
// point instead of everywhere. A naked `go` statement elsewhere reintroduces
// unbounded goroutines, scheduling-order-dependent merges, and scratch
// shared across workers. Escape hatch: //lint:nakedgo-ok <reason>.
package nakedgo

import (
	"go/ast"

	"ps3/internal/analyzers/analysis"
)

// Config scopes the analyzer.
type Config struct {
	// Allowed reports whether a package (by import path) may spawn
	// goroutines directly.
	Allowed func(pkgPath string) bool
}

// DefaultConfig permits the pool, the serving layer and the ingest
// pipeline's lifecycle loops.
func DefaultConfig() Config {
	return Config{Allowed: func(path string) bool {
		return path == "ps3/internal/exec" || path == "ps3/internal/serve" || path == "ps3/internal/ingest"
	}}
}

// Analyzer is the repo-configured instance.
var Analyzer = New(DefaultConfig())

// New builds a nakedgo analyzer with the given allowance.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "nakedgo",
		Doc:  "flags go statements outside internal/exec, internal/serve and internal/ingest: all fan-out goes through the bounded pool's ordered merges",
		Run:  func(pass *analysis.Pass) error { return run(cfg, pass) },
	}
}

func run(cfg Config, pass *analysis.Pass) error {
	if cfg.Allowed != nil && cfg.Allowed(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"naked go statement outside internal/exec, internal/serve and internal/ingest: fan out through exec's bounded pool (ForEach/Map/Reduce) or justify with //lint:nakedgo-ok")
			}
			return true
		})
	}
	return nil
}
