// Package pool owns concurrency in the fixtures, like internal/exec in the
// real tree: it may spawn goroutines freely.
package pool

func work() {}

// fan may spawn: the package is on the allowance.
func fan() {
	go work()
}
