// Package worker must not spawn goroutines directly: fan-out belongs to the
// bounded pool with its ordered merges.
package worker

func work() {}

// fan spawns directly and is flagged.
func fan() {
	go work() // want `naked go statement outside internal/exec, internal/serve and internal/ingest`
}

// justified documents why a direct goroutine is required here.
func justified() {
	done := make(chan struct{})
	go func() { //lint:nakedgo-ok fixture: lifecycle goroutine, joined on done below
		close(done)
	}()
	<-done
}
