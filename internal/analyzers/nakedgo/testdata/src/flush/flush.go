// Package flush models the ingest pipeline in the fixtures: a package on
// the allowance whose goroutines are lifecycle loops, joined on close.
package flush

func commit() {}

// loop spawns a lifecycle goroutine; the package is allowed, so nothing is
// flagged.
func loop() chan struct{} {
	done := make(chan struct{})
	go func() {
		commit()
		close(done)
	}()
	return done
}
