// Package flushout reimplements flush's loop outside the allowance: the
// same shape is flagged when the package does not own concurrency.
package flushout

func commit() {}

// loop spawns directly and is flagged.
func loop() chan struct{} {
	done := make(chan struct{})
	go func() { // want `naked go statement outside internal/exec, internal/serve and internal/ingest`
		commit()
		close(done)
	}()
	return done
}
