// Package ctxflow guards the deadline-propagation contract the robustness
// layer depends on: a context.Context flows down the call stack as a
// parameter, scoping exactly one request, and is never laundered through
// longer-lived state. Two anti-patterns break that and are flagged:
//
//   - A context stored in a struct field. Struct lifetimes outlive requests,
//     so a stored context either leaks a cancelled deadline into later work
//     or pins a request's values past its end (the go vet "containedctx"
//     family of bugs). Pass it as a parameter instead.
//   - A function that takes a context and starts a goroutine without ever
//     using the context. The spawned work is then invisible to cancellation:
//     the caller's deadline fires, the request returns, and the goroutine
//     keeps running — precisely the leak the serve layer's drain path must
//     not have. Either thread the context into the work or don't accept one.
//
// Deliberate detachment (a lifecycle loop joined on Close, a fire-and-forget
// telemetry hop) is justified with //lint:ctxflow-ok <reason>.
package ctxflow

import (
	"go/ast"
	"go/types"

	"ps3/internal/analyzers/analysis"
)

// Analyzer is the repo-configured instance.
var Analyzer = New()

// New builds a ctxflow analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "ctxflow",
		Doc:  "flags context.Context stored in struct fields or ignored by functions that spawn goroutines: deadlines propagate as parameters or not at all",
		Run:  run,
	}
}

// isContext reports whether t is context.Context (possibly behind an alias).
func isContext(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					checkStruct(pass, ts)
				}
			case *ast.FuncDecl:
				checkFunc(pass, d)
			}
		}
	}
	return nil
}

// checkStruct flags struct fields of type context.Context.
func checkStruct(pass *analysis.Pass, ts *ast.TypeSpec) {
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, field := range st.Fields.List {
		if t := pass.TypeOf(field.Type); t != nil && isContext(t) {
			pass.Reportf(field.Pos(),
				"context.Context stored in a field of %s: contexts scope one request and are passed as parameters, not kept in longer-lived state", ts.Name.Name)
		}
	}
}

// checkFunc flags a declared function that takes a context, starts a
// goroutine, and never uses the context: the spawned work cannot observe
// cancellation, so the parameter is a false promise of deadline propagation.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || fd.Type.Params == nil {
		return
	}
	// Collect the context parameters' objects (nil for unnamed or blank
	// parameters, which cannot be used at all).
	type ctxParam struct {
		obj types.Object
		pos ast.Node
	}
	var params []ctxParam
	for _, field := range fd.Type.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil || !isContext(t) {
			continue
		}
		if len(field.Names) == 0 {
			params = append(params, ctxParam{pos: field})
			continue
		}
		for _, name := range field.Names {
			params = append(params, ctxParam{obj: pass.Info.Defs[name], pos: name})
		}
	}
	if len(params) == 0 {
		return
	}
	spawns := false
	used := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			spawns = true
		case *ast.Ident:
			if obj := pass.Info.Uses[n]; obj != nil {
				used[obj] = true
			}
		}
		return true
	})
	if !spawns {
		return
	}
	for _, p := range params {
		if p.obj != nil && used[p.obj] {
			continue
		}
		pass.Reportf(p.pos.Pos(),
			"%s takes a context.Context it never uses but starts a goroutine: thread the context into the spawned work (or justify the detachment)", fd.Name.Name)
	}
}
