package suppressed

import "context"

type holder struct {
	ctx context.Context //lint:ctxflow-ok carries the accept-loop's base context, closed with the holder
}

//lint:ctxflow-ok fire-and-forget telemetry hop, deliberately detached from the request
func detach(ctx context.Context) {
	go func() {}()
}
