package flagged

import "context"

type server struct {
	ctx  context.Context // want `context\.Context stored in a field of server`
	name string
}

type twoCarriers struct {
	a context.Context // want `context\.Context stored in a field of twoCarriers`
	b context.Context // want `context\.Context stored in a field of twoCarriers`
}

func spawnsWithoutCtx(ctx context.Context, n int) int { // want `spawnsWithoutCtx takes a context\.Context it never uses but starts a goroutine`
	done := make(chan int)
	go func() { done <- n }()
	return <-done
}

func blankCtx(_ context.Context) { // want `blankCtx takes a context\.Context it never uses but starts a goroutine`
	go func() {}()
}

func unnamedCtx(context.Context) { // want `unnamedCtx takes a context\.Context it never uses but starts a goroutine`
	go func() {}()
}
