package clean

import "context"

// usesInSpawn threads the context into the goroutine: cancellation reaches
// the spawned work.
func usesInSpawn(ctx context.Context) error {
	errs := make(chan error, 1)
	go func() { errs <- ctx.Err() }()
	return <-errs
}

// usesBeforeSpawn consults the context even though the goroutine itself
// does not: the function made a cancellation decision, which is use.
func usesBeforeSpawn(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	go func() {}()
	return nil
}

// noSpawn takes a context and spawns nothing; an unused parameter here is
// dead code, not a cancellation leak.
func noSpawn(ctx context.Context) {}

// noCtx spawns without promising deadline propagation.
func noCtx(n int) int {
	done := make(chan int)
	go func() { done <- n }()
	return <-done
}

// localCtx builds its own context; nothing was promised to a caller.
func localCtx() error {
	ctx := context.Background()
	errs := make(chan error, 1)
	go func() { errs <- ctx.Err() }()
	return <-errs
}
