package ctxflow_test

import (
	"testing"

	"ps3/internal/analyzers/analyzertest"
	"ps3/internal/analyzers/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analyzertest.Run(t, "testdata", ctxflow.New(), "flagged", "suppressed", "clean")
}
