// Package scratchescape guards the pooled-scratch ownership contract from
// PRs 5–6.
//
// The hot paths recycle large working sets through sync.Pool — cluster's
// kmScratch, picker's pickScratch, query's kernel scratch (which owns the
// selection vectors). The contract: a scratch is owned by exactly one
// goroutine between pool Get and Put, and nothing derived from it outlives
// the Put. A scratch that leaks — stored in a longer-lived struct, captured
// by a spawned goroutine, or returned to a caller who doesn't know about the
// deferred Put — resurfaces later as cross-request data corruption that no
// unit test reproduces deterministically.
//
// Flagged shapes, for each configured scratch type:
//
//   - a scratch value assigned into a field of any non-scratch struct, or
//     supplied as a field in a non-scratch composite literal;
//   - a scratch value assigned to a package-level variable;
//   - a `go` statement whose function literal captures a scratch variable,
//     or that passes a scratch as an argument;
//   - a declared function returning a scratch, unless it is a sanctioned
//     pool accessor listed in Config.AllowedReturns;
//   - a function literal returning a scratch it captured from an enclosing
//     scope (returning a locally constructed scratch is the per-worker
//     constructor idiom used with exec.MapWith and stays legal).
//
// Escape hatch: //lint:scratchescape-ok <reason>.
package scratchescape

import (
	"go/ast"
	"go/types"

	"ps3/internal/analyzers/analysis"
)

// TypeRef names a scratch type by defining-package name and type name (the
// types are unexported, so import-path matching is unavailable to testdata).
type TypeRef struct {
	PkgName  string
	TypeName string
}

// Config lists the pooled types and the sanctioned pool accessors.
type Config struct {
	Types []TypeRef
	// AllowedReturns holds types.Func.FullName() strings of the pool
	// get/new helpers that legitimately hand a scratch to their caller.
	AllowedReturns map[string]bool
}

// DefaultConfig covers the repo's pooled scratch types.
func DefaultConfig() Config {
	return Config{
		Types: []TypeRef{
			{PkgName: "cluster", TypeName: "kmScratch"},
			{PkgName: "picker", TypeName: "pickScratch"},
			{PkgName: "query", TypeName: "scratch"},
		},
		AllowedReturns: map[string]bool{
			"ps3/internal/cluster.getKMScratch":  true,
			"ps3/internal/picker.getPickScratch": true,
		},
	}
}

// Analyzer is the repo-configured instance.
var Analyzer = New(DefaultConfig())

// New builds a scratchescape analyzer for the given scratch types.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "scratchescape",
		Doc:  "flags pooled scratch values escaping their owner: struct-field stores, goroutine captures, returns outside the pool accessors (PR-5/6 scratch-ownership contract)",
		Run:  func(pass *analysis.Pass) error { return run(cfg, pass) },
	}
}

func run(cfg Config, pass *analysis.Pass) error {
	for _, f := range pass.Files {
		f := f
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkAssign(cfg, pass, n)
			case *ast.CompositeLit:
				checkCompositeLit(cfg, pass, n)
			case *ast.GoStmt:
				checkGo(cfg, pass, n)
			case *ast.FuncDecl:
				checkFuncDeclReturns(cfg, pass, n)
			case *ast.FuncLit:
				checkFuncLitReturns(cfg, pass, f, n)
			}
			return true
		})
	}
	return nil
}

// isScratch reports whether t is (a pointer to) a configured scratch type.
func isScratch(cfg Config, t types.Type) bool {
	if t == nil {
		return false
	}
	for {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	for _, ref := range cfg.Types {
		if obj.Name() == ref.TypeName && obj.Pkg().Name() == ref.PkgName {
			return true
		}
	}
	return false
}

// checkAssign flags scratch values stored into struct fields of non-scratch
// types or into package-level variables.
func checkAssign(cfg Config, pass *analysis.Pass, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break // x, y = f() — multi-value RHS never yields scratch here
		}
		if !isScratch(cfg, pass.TypeOf(as.Rhs[i])) {
			continue
		}
		switch l := lhs.(type) {
		case *ast.SelectorExpr:
			sel, ok := pass.Info.Selections[l]
			if !ok || sel.Kind() != types.FieldVal {
				continue
			}
			// Wiring one scratch into another (sc.sub = subScratch) keeps
			// ownership inside the pooled unit and stays legal.
			if isScratch(cfg, sel.Recv()) {
				continue
			}
			pass.Reportf(as.Pos(),
				"pooled scratch stored into struct field %s outlives its pool Put; pass it as a parameter or justify with //lint:scratchescape-ok", sel.Obj().Name())
		case *ast.Ident:
			obj := pass.Info.Uses[l]
			if obj == nil {
				continue
			}
			if v, ok := obj.(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
				pass.Reportf(as.Pos(),
					"pooled scratch stored into package-level variable %s escapes its owner; justify with //lint:scratchescape-ok", v.Name())
			}
		}
	}
}

// checkCompositeLit flags scratch values placed in fields of non-scratch
// composite literals.
func checkCompositeLit(cfg Config, pass *analysis.Pass, cl *ast.CompositeLit) {
	t := pass.TypeOf(cl)
	if t == nil || isScratch(cfg, t) {
		return
	}
	if _, ok := t.Underlying().(*types.Struct); !ok {
		return
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if isScratch(cfg, pass.TypeOf(kv.Value)) {
			pass.Reportf(kv.Pos(),
				"pooled scratch embedded in a struct literal outlives its pool Put; justify with //lint:scratchescape-ok")
		}
	}
}

// checkGo flags goroutines that receive a scratch by argument or capture.
func checkGo(cfg Config, pass *analysis.Pass, g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if isScratch(cfg, pass.TypeOf(arg)) {
			pass.Reportf(arg.Pos(),
				"pooled scratch passed to a goroutine leaves its owning goroutine; use exec's per-worker state or justify with //lint:scratchescape-ok")
		}
	}
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	//lint:mapiter-ok diagnostics are sorted by position before the pass reports them
	for id, obj := range capturedScratch(cfg, pass, lit) {
		pass.Reportf(id.Pos(),
			"goroutine captures pooled scratch %s from its owner; use exec's per-worker state or justify with //lint:scratchescape-ok", obj.Name())
	}
}

// capturedScratch returns scratch-typed identifiers used inside lit but
// declared outside it.
func capturedScratch(cfg Config, pass *analysis.Pass, lit *ast.FuncLit) map[*ast.Ident]types.Object {
	out := map[*ast.Ident]types.Object{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || !isScratch(cfg, obj.Type()) {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			out[id] = obj
		}
		return true
	})
	return out
}

// checkFuncDeclReturns flags declared functions that hand scratch to their
// callers, except the sanctioned pool accessors.
func checkFuncDeclReturns(cfg Config, pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Type.Results == nil {
		return
	}
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if ok && cfg.AllowedReturns[obj.FullName()] {
		return
	}
	for _, field := range fd.Type.Results.List {
		if isScratch(cfg, pass.TypeOf(field.Type)) {
			pass.Reportf(field.Type.Pos(),
				"%s returns a pooled scratch: only the pool accessors may hand scratch to callers; justify with //lint:scratchescape-ok", fd.Name.Name)
		}
	}
}

// checkFuncLitReturns flags function literals returning a scratch captured
// from an enclosing scope. Returning a locally built scratch is the
// per-worker constructor idiom (exec.MapWith's newW) and stays legal.
func checkFuncLitReturns(cfg Config, pass *analysis.Pass, f *ast.File, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // nested literal gets its own visit
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			id, ok := res.(*ast.Ident)
			if !ok {
				continue
			}
			obj, ok := pass.Info.Uses[id].(*types.Var)
			if !ok || !isScratch(cfg, obj.Type()) {
				continue
			}
			if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
				pass.Reportf(res.Pos(),
					"function literal returns captured pooled scratch %s past its owner; justify with //lint:scratchescape-ok", obj.Name())
			}
		}
		return true
	})
}
