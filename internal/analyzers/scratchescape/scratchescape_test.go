package scratchescape_test

import (
	"testing"

	"ps3/internal/analyzers/analyzertest"
	"ps3/internal/analyzers/scratchescape"
)

func TestScratchEscape(t *testing.T) {
	a := scratchescape.New(scratchescape.Config{
		Types:          []scratchescape.TypeRef{{PkgName: "pool", TypeName: "scratch"}},
		AllowedReturns: map[string]bool{"pool.getScratch": true},
	})
	analyzertest.Run(t, "testdata", a, "pool")
}
