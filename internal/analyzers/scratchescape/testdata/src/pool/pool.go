// Package pool mirrors the pooled-scratch ownership contract: a scratch is
// owned by one goroutine between pool Get and Put, so it must not be stored,
// captured, or returned past that window.
package pool

type scratch struct {
	buf []int
	sub *scratch
}

type holder struct {
	sc *scratch
}

var global *scratch

// getScratch is the sanctioned pool accessor and may hand scratch out.
func getScratch() *scratch { return &scratch{} }

// leak hands scratch to callers outside the pool accessors.
func leak() *scratch { // want `leak returns a pooled scratch`
	return &scratch{}
}

// stash parks a scratch in a struct field, where it outlives the pool Put.
func stash(h *holder, sc *scratch) {
	h.sc = sc // want `pooled scratch stored into struct field sc`
}

// wire keeps one scratch inside another: ownership stays with the pooled
// unit, so this is legal.
func wire(a, b *scratch) {
	a.sub = b
}

// publish stores scratch into a package-level variable.
func publish(sc *scratch) {
	global = sc // want `pooled scratch stored into package-level variable global`
}

// embed places scratch in a struct literal that outlives the owner.
func embed(sc *scratch) holder {
	return holder{sc: sc} // want `pooled scratch embedded in a struct literal`
}

// handoff passes scratch into a goroutine by argument.
func handoff(sc *scratch) {
	go consume(sc) // want `pooled scratch passed to a goroutine`
}

func consume(sc *scratch) {}

// capture closes over the owner's scratch inside a goroutine.
func capture(sc *scratch) {
	go func() {
		consume(sc) // want `goroutine captures pooled scratch sc`
	}()
}

// reuse returns a closure that hands out the owner's scratch.
func reuse(sc *scratch) func() *scratch {
	return func() *scratch {
		return sc // want `function literal returns captured pooled scratch sc`
	}
}

// fresh builds a per-worker scratch inside the literal — the exec.MapWith
// per-worker constructor idiom — and stays legal.
func fresh() func() *scratch {
	return func() *scratch {
		sc := &scratch{}
		return sc
	}
}

// justified retains a scratch deliberately, with the reason attached.
func justified(h *holder, sc *scratch) {
	h.sc = sc //lint:scratchescape-ok fixture: single-goroutine helper retains its scratch by design
}
