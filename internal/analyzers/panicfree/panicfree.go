// Package panicfree guards the untrusted-decode contract from PRs 3–4.
//
// Snapshot and store bytes come from disk or the network and are hostile
// until validated: every decode path (store readers, table.ReadTable,
// stats.ReadStats, gbt snapshot restore, picker restore) must fail with an
// error, never a panic — a panic in a decode goroutine kills a serving
// process. The fuzzers enforce this dynamically for inputs they reach; this
// analyzer enforces the coding discipline statically for all of it.
//
// Within each configured region — a whole package, or the transitive
// same-package closure of named root functions — the analyzer flags:
//
//   - panic(...) calls;
//   - type assertions without the comma-ok form (x.(T) panics on mismatch;
//     switch x := y.(type) is fine);
//   - calls to Must*-named functions (their documented contract is to panic
//     on bad input, which is exactly what decode paths must not do).
//
// Out-of-range indexing is the other panic source on these paths; it is
// covered dynamically by the fuzzers (FuzzReadTable, FuzzReadStats,
// FuzzOpenStore) since static bounds proofs are out of scope here.
// Escape hatch: //lint:panicfree-ok <reason>.
package panicfree

import (
	"go/ast"
	"go/types"
	"strings"

	"ps3/internal/analyzers/analysis"
)

// Config maps package import paths to decode-region roots. A nil/empty root
// list marks the whole package as a decode region; otherwise the region is
// the named functions plus everything in the package reachable from them.
type Config struct {
	Regions map[string][]string
}

// DefaultConfig covers the repo's untrusted decode surfaces.
func DefaultConfig() Config {
	return Config{Regions: map[string][]string{
		// The paged store exists to parse untrusted files; all of it.
		"ps3/internal/store": nil,
		"ps3/internal/table": {"ReadTable", "MakePartition", "MakeEncodedPartition", "DictFromValues"},
		"ps3/internal/stats": {"ReadStats"},
		"ps3/internal/gbt":   {"FromSnapshot"},
		// ReadPicker/ReadLSS restore the learned stack from snapshot bytes.
		"ps3/internal/picker": {"ReadPicker", "ReadLSS"},
		// WAL recovery parses logs cut mid-write by a crash: framed scans
		// and row decoding must error on torn bytes, never panic.
		"ps3/internal/ingest": {"ReadWAL", "DecodeRows"},
	}}
}

// Analyzer is the repo-configured instance.
var Analyzer = New(DefaultConfig())

// New builds a panicfree analyzer for the given regions.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "panicfree",
		Doc:  "flags panic, non-comma-ok type asserts, and Must* calls in untrusted-decode regions (PR-3/4 error-not-panic contract)",
		Run:  func(pass *analysis.Pass) error { return run(cfg, pass) },
	}
}

func run(cfg Config, pass *analysis.Pass) error {
	roots, inScope := cfg.Regions[pass.Pkg.Path()]
	if !inScope {
		return nil
	}
	var inRegion func(fd *ast.FuncDecl) bool
	if len(roots) == 0 {
		inRegion = func(*ast.FuncDecl) bool { return true }
	} else {
		rootSet := map[string]bool{}
		for _, r := range roots {
			rootSet[r] = true
		}
		graph := analysis.BuildFuncGraph(pass)
		reached := graph.Reachable(func(fd *ast.FuncDecl) bool {
			return fd.Recv == nil && rootSet[fd.Name.Name]
		})
		inRegion = func(fd *ast.FuncDecl) bool { return fd != nil && reached[fd] }
	}
	for _, f := range pass.Files {
		f := f
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			fd := analysis.FuncFor(f, n)
			if fd == nil || !inRegion(fd) {
				return true
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, fd, n)
			case *ast.TypeAssertExpr:
				checkAssert(pass, fd, f, n)
			}
			return true
		})
	}
	return nil
}

// checkCall flags panic() and Must* calls.
func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[fun]; ok {
			if b, ok := obj.(*types.Builtin); ok && b.Name() == "panic" {
				pass.Reportf(call.Pos(),
					"panic in untrusted-decode function %s: decode paths must return errors; justify with //lint:panicfree-ok", fd.Name.Name)
				return
			}
		}
		flagMust(pass, fd, call, fun.Name)
	case *ast.SelectorExpr:
		flagMust(pass, fd, call, fun.Sel.Name)
	}
}

func flagMust(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, name string) {
	if strings.HasPrefix(name, "Must") {
		pass.Reportf(call.Pos(),
			"%s calls %s in an untrusted-decode region: Must* panics on bad input; use the error-returning form or justify with //lint:panicfree-ok", fd.Name.Name, name)
	}
}

// checkAssert flags x.(T) without the comma-ok form. A TypeAssertExpr inside
// a type switch has a nil Type and is exempt; the comma-ok form is detected
// by the parent assignment expecting two values.
func checkAssert(pass *analysis.Pass, fd *ast.FuncDecl, f *ast.File, ta *ast.TypeAssertExpr) {
	if ta.Type == nil {
		return // type switch
	}
	if tv, ok := pass.Info.Types[ta]; ok {
		// In `v, ok := x.(T)` the assert expression has a 2-tuple type.
		if t, ok := tv.Type.(*types.Tuple); ok && t.Len() == 2 {
			return
		}
	}
	pass.Reportf(ta.Pos(),
		"type assertion without comma-ok in untrusted-decode function %s panics on unexpected wire data; use the two-value form or justify with //lint:panicfree-ok", fd.Name.Name)
}
