package panicfree_test

import (
	"testing"

	"ps3/internal/analyzers/analyzertest"
	"ps3/internal/analyzers/panicfree"
)

func TestPanicFree(t *testing.T) {
	a := panicfree.New(panicfree.Config{Regions: map[string][]string{
		"codec":    {"Read"},
		"rawstore": nil,
	}})
	analyzertest.Run(t, "testdata", a, "codec", "rawstore", "outside")
}
