// Package rawstore is wholly a decode region (nil roots in the config):
// every function is in scope, reachable or not.
package rawstore

func helper() {
	panic("corrupt page") // want `panic in untrusted-decode function helper`
}
