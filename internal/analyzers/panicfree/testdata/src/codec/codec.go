// Package codec mirrors a rooted untrusted-decode region: Read and every
// same-package function reachable from it must return errors, never panic.
package codec

// Read is the region root: it decodes hostile bytes.
func Read(b []byte) (int, error) {
	v, err := parse(b)
	if err != nil {
		return 0, err
	}
	return coerce(v) + header(b) + checked(len(b)), nil
}

// parse is reachable from Read, so its panic is in region.
func parse(b []byte) (int, error) {
	if len(b) == 0 {
		panic("empty input") // want `panic in untrusted-decode function parse`
	}
	return int(b[0]), nil
}

// coerce asserts without comma-ok, which panics on unexpected wire data.
func coerce(v any) int {
	box := any(v)
	n := box.(int)              // want `type assertion without comma-ok in untrusted-decode function coerce`
	if m, ok := box.(int); ok { // the comma-ok form is fine
		return m
	}
	switch t := box.(type) { // a type switch is fine too
	case int:
		return t
	}
	return n
}

// header calls a Must* helper, whose contract is to panic on bad input.
func header(b []byte) int {
	return MustVersion(b) // want `header calls MustVersion in an untrusted-decode region`
}

// MustVersion is the panicking convenience form decode paths must avoid.
func MustVersion(b []byte) int { return len(b) }

// checked documents why its panic is unreachable.
func checked(n int) int {
	if n < 0 {
		panic("negative length survived validation") //lint:panicfree-ok n is a built-in len, never negative
	}
	return n
}

// free is not reachable from Read: its panic sits outside the region.
func free() {
	panic("out of scope")
}
