// Package outside is not a configured decode region: panics here are the
// caller's business and never flagged.
package outside

// Check panics on programmer error, which is fine outside decode paths.
func Check(ok bool) {
	if !ok {
		panic("invariant violated")
	}
}
