package analysis

import (
	"go/ast"
	"go/types"
)

// FuncGraph is a package-local over-approximation of the call graph: an edge
// exists from a function declaration to every same-package function it
// mentions at all (called directly, deferred, passed as a value, stored in a
// struct — any identifier use). Mentions over-approximate calls, which is the
// right direction for a linter: code is considered reachable unless nothing
// refers to it.
type FuncGraph struct {
	// Decls maps each declared function/method object to its declaration.
	Decls map[*types.Func]*ast.FuncDecl
	// Mentions maps each declaration to the same-package functions its body
	// (or field/receiver expressions) refers to.
	Mentions map[*ast.FuncDecl][]*types.Func
}

// BuildFuncGraph scans the pass's files and builds the mention graph.
func BuildFuncGraph(pass *Pass) *FuncGraph {
	g := &FuncGraph{
		Decls:    map[*types.Func]*ast.FuncDecl{},
		Mentions: map[*ast.FuncDecl][]*types.Func{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				g.Decls[obj] = fd
			}
		}
	}
	//lint:mapiter-ok fills independent per-declaration mention lists; no ordered output
	for _, fd := range g.Decls {
		fd := fd
		ast.Inspect(fd, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || obj.Pkg() != pass.Pkg {
				return true
			}
			if _, declared := g.Decls[obj]; declared {
				g.Mentions[fd] = append(g.Mentions[fd], obj)
			}
			return true
		})
	}
	return g
}

// Reachable returns the set of declarations reachable from the roots selected
// by isRoot, following Mentions transitively.
func (g *FuncGraph) Reachable(isRoot func(fd *ast.FuncDecl) bool) map[*ast.FuncDecl]bool {
	reached := map[*ast.FuncDecl]bool{}
	var stack []*ast.FuncDecl
	//lint:mapiter-ok computes a reachable set; the set is order-free even though traversal order varies
	for _, fd := range g.Decls {
		if isRoot(fd) && !reached[fd] {
			reached[fd] = true
			stack = append(stack, fd)
		}
	}
	for len(stack) > 0 {
		fd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, callee := range g.Mentions[fd] {
			cd := g.Decls[callee]
			if cd != nil && !reached[cd] {
				reached[cd] = true
				stack = append(stack, cd)
			}
		}
	}
	return reached
}

// ExportedAPIRoot reports whether fd is part of the package's externally
// reachable surface under the conservative rule used by the ordered-output
// analyzers: every exported function, every method (methods of any type may
// be invoked through interfaces — sort.Interface, io.Writer — without a
// static in-package call site), and init/main.
func ExportedAPIRoot(fd *ast.FuncDecl) bool {
	if fd.Recv != nil {
		return true
	}
	return fd.Name.IsExported() || fd.Name.Name == "init" || fd.Name.Name == "main"
}

// FuncFor returns the FuncDecl in f that contains node n, or nil.
func FuncFor(f *ast.File, n ast.Node) *ast.FuncDecl {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fd.Pos() <= n.Pos() && n.End() <= fd.End() {
			return fd
		}
	}
	return nil
}
