package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// demoAnalyzer reports one finding per top-level var declaration, giving the
// directive machinery something deterministic to suppress.
func demoAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "demo",
		Doc:  "test analyzer: flags every top-level var",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if g, ok := d.(*ast.GenDecl); ok && g.Tok == token.VAR {
						pass.Reportf(g.Pos(), "var found")
					}
				}
			}
			return nil
		},
	}
}

func runDemo(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "demo.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(demoAnalyzer(), &Pass{Fset: fset, Files: []*ast.File{f}})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestDirectiveSuppressesOnSameLine(t *testing.T) {
	diags := runDemo(t, `package p

var A = 1 //lint:demo-ok justified for the test

var B = 2
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "var found") || diags[0].Pos.Line != 5 {
		t.Fatalf("want only B's finding at line 5, got %v", diags)
	}
}

func TestDirectiveSuppressesFromLineAbove(t *testing.T) {
	diags := runDemo(t, `package p

//lint:demo-ok justified for the test
var A = 1
`)
	if len(diags) != 0 {
		t.Fatalf("want no findings, got %v", diags)
	}
}

func TestBareDirectiveDoesNotSuppress(t *testing.T) {
	diags := runDemo(t, `package p

//lint:demo-ok
var A = 1
`)
	if len(diags) != 2 {
		t.Fatalf("want the unjustified directive plus the unsuppressed finding, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "needs a justification") {
		t.Fatalf("first diagnostic should be the bare directive, got %q", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "var found") {
		t.Fatalf("second diagnostic should be the surviving finding, got %q", diags[1].Message)
	}
}

func TestForeignDirectiveDoesNotSuppress(t *testing.T) {
	diags := runDemo(t, `package p

var A = 1 //lint:other-ok belongs to a different analyzer
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "var found") {
		t.Fatalf("a different analyzer's directive must not suppress, got %v", diags)
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	diags := runDemo(t, `package p

var B = 2
var A = 1
`)
	if len(diags) != 2 || diags[0].Pos.Line > diags[1].Pos.Line {
		t.Fatalf("diagnostics must be position-sorted, got %v", diags)
	}
}
