// Package analysis is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough framework to write typed AST
// checkers, run them over type-checked packages, and suppress individual
// findings with justified source directives.
//
// The repo cannot vendor x/tools (the container has no module cache and no
// network), so the Analyzer/Pass/Diagnostic shapes below deliberately mirror
// the x/tools API: an analyzer written against this package ports to the real
// multichecker by changing imports. The one extension is first-class
// suppression directives:
//
//	//lint:<name>-ok <justification>
//
// placed on the flagged line or on its own line immediately above suppresses
// that analyzer's finding at that line. The justification is mandatory — a
// bare directive does not suppress and is itself reported — so every escape
// hatch in the tree carries its reasoning next to the code.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in output and in its suppression
	// directive //lint:<Name>-ok.
	Name string

	// Doc is a one-paragraph description of the invariant the analyzer
	// guards.
	Doc string

	// IncludeTests marks analyzers whose invariant binds _test.go files
	// too. The driver runs these over test variants of each package.
	IncludeTests bool

	// Run performs the check, reporting findings via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass supplies one type-checked package to an analyzer and collects its
// findings.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// TestFiles, when non-nil, restricts reporting to the named files
	// (base names): the pass is a test variant and the base package's
	// findings were already reported by the primary pass.
	TestFiles map[string]bool

	diags []Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.TestFiles != nil && !p.TestFiles[baseName(position.Filename)] {
		return
	}
	p.diags = append(p.diags, Diagnostic{Pos: position, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// directiveRe matches suppression directives. The analyzer name is group 1,
// the justification group 2.
var directiveRe = regexp.MustCompile(`^//lint:([a-z][a-z0-9]*)-ok(?:[ \t]+(\S.*))?$`)

// directive is one parsed //lint:<name>-ok comment.
type directive struct {
	name   string
	reason string
	pos    token.Position
}

// collectDirectives parses every suppression directive in the pass's files.
func collectDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var ds []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				ds = append(ds, directive{name: m[1], reason: strings.TrimSpace(m[2]), pos: fset.Position(c.Pos())})
			}
		}
	}
	return ds
}

// Run executes analyzer a over the package described by pass, applies
// suppression directives, and returns the surviving findings sorted by
// position. Directives without a justification never suppress and are
// reported as findings themselves (when they name this analyzer).
func Run(a *Analyzer, pass *Pass) ([]Diagnostic, error) {
	pass.Analyzer = a
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	// Index this analyzer's justified directives by (file, line).
	type key struct {
		file string
		line int
	}
	justified := map[key]bool{}
	var out []Diagnostic
	for _, d := range collectDirectives(pass.Fset, pass.Files) {
		if d.name != a.Name {
			continue
		}
		if pass.TestFiles != nil && !pass.TestFiles[baseName(d.pos.Filename)] {
			continue
		}
		if d.reason == "" {
			out = append(out, Diagnostic{Pos: d.pos,
				Message: fmt.Sprintf("directive //lint:%s-ok needs a justification and does not suppress without one", a.Name)})
			continue
		}
		justified[key{d.pos.Filename, d.pos.Line}] = true
	}
	for _, diag := range pass.diags {
		// A directive suppresses findings on its own line (trailing
		// comment) or on the line below (standalone comment above).
		if justified[key{diag.Pos.Filename, diag.Pos.Line}] ||
			justified[key{diag.Pos.Filename, diag.Pos.Line - 1}] {
			continue
		}
		out = append(out, diag)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}
