// Package analyzertest runs an analyzer over fixture packages and checks its
// findings against `// want` comments, mirroring the contract of
// golang.org/x/tools/go/analysis/analysistest without the dependency.
//
// Fixtures live under <dir>/src/<pkgpath>/*.go. Every line that should be
// flagged carries a trailing comment
//
//	// want "regexp"
//
// (several patterns for several findings on one line). The runner fails the
// test if a finding has no matching want on its line, or a want goes
// unmatched. Suppression directives (//lint:<name>-ok reason) are exercised
// naturally: a suppressed line simply carries no want.
//
// Fixture packages are type-checked hermetically: they may import sibling
// fixture packages by their directory path, but not the standard library —
// keeping the harness free of export-data plumbing and the fixtures
// self-contained. Run under plain `go test ./...`, so tier-1 exercises every
// analyzer.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ps3/internal/analyzers/analysis"
)

// Run analyzes each fixture package (by path under dir/src) and reports
// mismatches between findings and want comments on t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := &fixtureLoader{root: filepath.Join(dir, "src"), fset: token.NewFileSet(), pkgs: map[string]*fixturePkg{}}
	for _, path := range pkgPaths {
		path := path
		t.Run(path, func(t *testing.T) {
			t.Helper()
			p, err := ld.load(path)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", path, err)
			}
			pass := &analysis.Pass{Fset: ld.fset, Files: p.files, Pkg: p.pkg, Info: p.info}
			diags, err := analysis.Run(a, pass)
			if err != nil {
				t.Fatalf("running %s on %s: %v", a.Name, path, err)
			}
			checkWants(t, ld.fset, p.files, diags)
		})
	}
}

// fixturePkg is one parsed and type-checked fixture package.
type fixturePkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// fixtureLoader resolves fixture imports among sibling fixture directories.
type fixtureLoader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*fixturePkg
}

func (ld *fixtureLoader) load(path string) (*fixturePkg, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %s has no Go files", path)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &fixturePkg{files: files, pkg: pkg, info: info}
	ld.pkgs[path] = p
	return p, nil
}

// Import implements types.Importer over sibling fixture packages. "sort",
// "slices" and "context" resolve to tiny stubs so fixtures can exercise the
// sorted-key and context-flow idioms hermetically.
func (ld *fixtureLoader) Import(path string) (*types.Package, error) {
	if path == "sort" || path == "slices" {
		return stubSortPackage(path), nil
	}
	if path == "context" {
		return stubContextPackage(), nil
	}
	p, err := ld.load(path)
	if err != nil {
		return nil, fmt.Errorf("fixture import %q (fixtures may only import sibling fixtures, sort, slices, or context): %w", path, err)
	}
	p.pkg.MarkComplete()
	return p.pkg, nil
}

// stubSortPackage fabricates a minimal "sort"/"slices" package exposing
// Strings/Ints/Sort so fixtures can reference sorting without the real
// standard library.
func stubSortPackage(path string) *types.Package {
	pkg := types.NewPackage(path, path)
	scope := pkg.Scope()
	strSlice := types.NewSlice(types.Typ[types.String])
	intSlice := types.NewSlice(types.Typ[types.Int])
	mk := func(name string, param types.Type) {
		sig := types.NewSignatureType(nil, nil, nil,
			types.NewTuple(types.NewVar(token.NoPos, pkg, "x", param)), nil, false)
		scope.Insert(types.NewFunc(token.NoPos, pkg, name, sig))
	}
	mk("Strings", strSlice)
	mk("Ints", intSlice)
	mk("Sort", types.NewInterfaceType(nil, nil))
	pkg.MarkComplete()
	return pkg
}

// stubContextPackage fabricates a minimal "context" package: the Context
// named interface (with an Err method, so clean fixtures can use the
// parameter) and Background. Enough for ctxflow fixtures; the analyzer only
// matches the named type's identity, not its method set.
func stubContextPackage() *types.Package {
	pkg := types.NewPackage("context", "context")
	scope := pkg.Scope()
	errSig := types.NewSignatureType(nil, nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, pkg, "", types.Universe.Lookup("error").Type())), false)
	iface := types.NewInterfaceType([]*types.Func{
		types.NewFunc(token.NoPos, pkg, "Err", errSig),
	}, nil)
	iface.Complete()
	tn := types.NewTypeName(token.NoPos, pkg, "Context", nil)
	named := types.NewNamed(tn, iface, nil)
	scope.Insert(tn)
	bgSig := types.NewSignatureType(nil, nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, pkg, "", named)), false)
	scope.Insert(types.NewFunc(token.NoPos, pkg, "Background", bgSig))
	pkg.MarkComplete()
	return pkg
}

// wantRe extracts the quoted patterns of a want comment. Both analysistest
// quoting forms are accepted: interpreted strings ("...") and raw strings
// (`...`, convenient for patterns full of regexp metacharacters).
var wantRe = regexp.MustCompile("^// want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)\\s*$")

var wantPatRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// checkWants matches findings against want comments line by line.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	type want struct {
		re   *regexp.Regexp
		pos  string
		used bool
	}
	wants := map[key][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, tok := range wantPatRe.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(tok)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, tok, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants[key{pos.Filename, pos.Line}] = append(wants[key{pos.Filename, pos.Line}], &want{re: re, pos: pos.String()})
				}
			}
		}
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s", d.Pos, d.Message)
		}
	}
	var missed []string
	//lint:mapiter-ok collected messages are fully sorted below before reporting
	for _, ws := range wants {
		for _, w := range ws {
			if !w.used {
				missed = append(missed, fmt.Sprintf("%s: no finding matched want %q", w.pos, w.re.String()))
			}
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Error(m)
	}
}
