GO ?= go

.PHONY: build test race race-serve chaos-smoke bench bench-exec bench-store bench-store-smoke bench-pick bench-pick-smoke bench-cluster bench-cluster-smoke bench-ingest bench-ingest-smoke serve-bench vet fmt-check lint verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race pass over the parallel execution surface: the scan engine, every
# layer that fans out onto it, and the concurrent serving layer.
race:
	$(GO) test -race -count=1 ./internal/exec/ ./internal/query/ ./internal/core/ ./internal/stats/ ./internal/picker/ ./internal/experiments/ ./internal/serve/ ./internal/store/ ./internal/ingest/

# Serving-layer race tests alone: N goroutines on one snapshot-restored
# system — resident and store-backed with a thrashing partition cache —
# must match the sequential baseline bit for bit.
race-serve:
	$(GO) test -race -count=1 -run 'TestConcurrentServingMatchesSequentialBaseline|TestConcurrentPagedServingMatchesResidentBaseline' ./internal/serve/

# Fault-injection chaos suite under the race detector: randomized transient
# disk faults under concurrent append+query load (no acknowledged row lost,
# no silently wrong answer, monotonic snapshot versions), plus the
# deterministic degraded modes — quarantined-partition serving, WAL-poison
# read-only flip, drain-time shedding, mid-scan deadlines — and the
# no-goroutine-leak contract after shutdown.
chaos-smoke:
	$(GO) test -race -count=1 -run 'TestChaos' -v ./internal/serve/

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Vectorized execution engine: selection-vector kernels vs the retained
# row-at-a-time reference evaluator.
bench-exec:
	$(GO) test -bench 'BenchmarkEvalPartition|BenchmarkSelectivity' -benchmem -run '^$$' .

# Paged partition store: cold scan (disk + CRC + decode per partition) raw
# vs encoded per dataset, cache hit rate at fixed byte budgets, warm scan,
# and the picked-subset serving shape. The raw output is rendered into
# BENCH_store.json, including the per-dataset compression ratios and the
# kdd cache-budget claim (encoded at 1/3 of the raw budget, equal-or-better
# hit rate).
bench-store:
	$(GO) test -bench 'BenchmarkStore' -benchmem -benchtime 2s -run '^$$' ./internal/store/ | tee bench_store_raw.txt
	awk -v date=$$(date +%F) -v gover=$$($(GO) env GOVERSION) -f scripts/bench_store_json.awk bench_store_raw.txt > BENCH_store.json
	@rm -f bench_store_raw.txt
	@cat BENCH_store.json

# One-iteration smoke of the store benchmarks plus the encoding acceptance
# contracts (raw/encoded bit-identity, the no-decode counter proof, and the
# frozen golden files); wired into CI so the benchmark fixtures and the
# encoded-kernel counters can never rot.
bench-store-smoke:
	$(GO) test -run 'TestEncodedVsRawQueryEquivalence|TestCatPredicateEvaluatesWithoutDecode|TestGoldenFiles|TestChooserHintConsistency' -v ./internal/store/
	$(GO) test -bench 'BenchmarkStore' -benchtime 1x -run '^$$' ./internal/store/

# Pick-time inference: the batched pick path (pooled featurization +
# flat-ensemble funnel) vs the retained pointer-tree reference, across
# serving budgets, plus the flat predictor micro-benchmarks. The zero-alloc
# contract of the steady path is asserted by tests
# (TestPredictBatchZeroAllocs, TestFillRowZeroAllocs,
# TestBatchScorerZeroAllocsAfterBind), not just observed in -benchmem.
# BENCH_pick.json records the baseline numbers.
bench-pick:
	$(GO) test -bench 'BenchmarkPick|BenchmarkPickInference' -benchmem -run '^$$' ./internal/picker/
	$(GO) test -bench 'BenchmarkPredictBatch' -benchmem -run '^$$' ./internal/gbt/

# One-iteration smoke run of the pick benchmarks plus the zero-alloc tests;
# wired into CI so the benchmark fixtures can never rot. Two separate
# invocations so a failure in either exits nonzero (no output filtering).
bench-pick-smoke:
	$(GO) test -run 'ZeroAllocs' -v ./internal/picker/ ./internal/gbt/ ./internal/stats/
	$(GO) test -bench 'BenchmarkPick|BenchmarkPredictBatch' -benchtime 1x -run '^$$' ./internal/picker/ ./internal/gbt/

# Clustering tail: triangle-inequality-bounded k-means vs the frozen exact
# reference, isolated (BenchmarkKMeans, with the skipped-distance fraction
# reported as a metric) and inside the full pick path at the budget where
# the tail dominates (BenchmarkPick/budget10pct). The raw output is rendered
# into BENCH_cluster.json, including the derived reference/bounded and
# reference/batch speedups.
bench-cluster:
	$(GO) test -bench 'BenchmarkKMeans' -benchmem -benchtime 2s -run '^$$' ./internal/cluster/ | tee bench_cluster_raw.txt
	$(GO) test -bench 'BenchmarkPick/budget10pct' -benchtime 2s -run '^$$' ./internal/picker/ | tee -a bench_cluster_raw.txt
	awk -v date=$$(date +%F) -v gover=$$($(GO) env GOVERSION) -f scripts/bench_cluster_json.awk bench_cluster_raw.txt > BENCH_cluster.json
	@rm -f bench_cluster_raw.txt
	@cat BENCH_cluster.json

# One-iteration smoke of the clustering benchmarks plus the skip-fraction
# and equivalence contracts; wired into CI next to bench-pick-smoke so the
# bounded k-means fixtures and counters can never rot.
bench-cluster-smoke:
	$(GO) test -run 'TestKMeansBounded|TestPickBatchKMeansSkipsDistances' -v ./internal/cluster/ ./internal/picker/
	$(GO) test -bench 'BenchmarkKMeans' -benchtime 1x -run '^$$' ./internal/cluster/

# Live ingest path: acknowledged append throughput at both WAL commit
# disciplines (sync fsync vs group-commit window), the full flush latency
# (seal + stats extension + segment encode/fsync/rename + WAL rotation +
# snapshot rebuild), and the p99 query latency observed while appends,
# flushes and hot snapshot swaps run underneath. The raw output is rendered
# into BENCH_ingest.json.
bench-ingest:
	$(GO) test -bench 'BenchmarkIngest' -benchmem -benchtime 2s -run '^$$' ./internal/ingest/ | tee bench_ingest_raw.txt
	awk -v date=$$(date +%F) -v gover=$$($(GO) env GOVERSION) -f scripts/bench_ingest_json.awk bench_ingest_raw.txt > BENCH_ingest.json
	@rm -f bench_ingest_raw.txt
	@cat BENCH_ingest.json

# One-iteration smoke of the ingest benchmarks plus the offline-equivalence
# and crash-recovery contracts; wired into CI so the live-ingest fixtures
# (WAL framing, flush protocol, snapshot swap) can never rot.
bench-ingest-smoke:
	$(GO) test -run 'TestOfflineEquivalence|TestCrashRecovery|TestRecoveryResumesAppends|TestServeSwapUnderAppendTraffic' -v ./internal/ingest/ ./internal/serve/
	$(GO) test -bench 'BenchmarkIngest' -benchtime 1x -run '^$$' ./internal/ingest/

# Sustained concurrent serving throughput over a restored snapshot.
serve-bench:
	$(GO) test -bench BenchmarkServeThroughput -benchmem -run '^$$' ./internal/serve/

vet: fmt-check
	$(GO) vet ./...

# Custom invariant linters (internal/analyzers, driven by cmd/ps3lint):
# mapiter (determinism), decodebypass (lazy-decode seam), scratchescape
# (pooled scratch ownership), panicfree (untrusted decode), nakedgo
# (concurrency choke point), ctxflow (deadline propagation) over the whole
# module, test files included.
# Exits nonzero on any finding not suppressed by a justified
# //lint:<name>-ok directive.
lint:
	$(GO) run ./cmd/ps3lint ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

verify: build vet lint test
