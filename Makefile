GO ?= go

.PHONY: build test race race-serve bench bench-exec bench-store serve-bench vet fmt-check verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race pass over the parallel execution surface: the scan engine, every
# layer that fans out onto it, and the concurrent serving layer.
race:
	$(GO) test -race -count=1 ./internal/exec/ ./internal/query/ ./internal/core/ ./internal/stats/ ./internal/picker/ ./internal/experiments/ ./internal/serve/ ./internal/store/

# Serving-layer race tests alone: N goroutines on one snapshot-restored
# system — resident and store-backed with a thrashing partition cache —
# must match the sequential baseline bit for bit.
race-serve:
	$(GO) test -race -count=1 -run 'TestConcurrentServingMatchesSequentialBaseline|TestConcurrentPagedServingMatchesResidentBaseline' ./internal/serve/

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Vectorized execution engine: selection-vector kernels vs the retained
# row-at-a-time reference evaluator.
bench-exec:
	$(GO) test -bench 'BenchmarkEvalPartition|BenchmarkSelectivity' -benchmem -run '^$$' .

# Paged partition store: cold scan (disk + CRC + decode per partition),
# warm scan (cache hits), and the picked-subset serving shape with a cache
# budget far below the dataset size.
bench-store:
	$(GO) test -bench 'BenchmarkStore' -benchmem -run '^$$' ./internal/store/

# Sustained concurrent serving throughput over a restored snapshot.
serve-bench:
	$(GO) test -bench BenchmarkServeThroughput -benchmem -run '^$$' ./internal/serve/

vet: fmt-check
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

verify: build vet test
