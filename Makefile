GO ?= go

.PHONY: build test race bench bench-exec vet fmt-check verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race pass over the parallel execution surface: the scan engine and
# every layer that fans out onto it.
race:
	$(GO) test -race -count=1 ./internal/exec/ ./internal/query/ ./internal/core/ ./internal/stats/ ./internal/picker/ ./internal/experiments/

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Vectorized execution engine: selection-vector kernels vs the retained
# row-at-a-time reference evaluator.
bench-exec:
	$(GO) test -bench 'BenchmarkEvalPartition|BenchmarkSelectivity' -benchmem -run '^$$' .

vet: fmt-check
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

verify: build vet test
