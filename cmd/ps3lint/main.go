// Command ps3lint is the repo's invariant multichecker: it runs the custom
// static analyzers under internal/analyzers — mapiter, decodebypass,
// scratchescape, panicfree, nakedgo, ctxflow — over the module and exits
// nonzero on any unsuppressed finding. `make lint` (and through it
// `make verify` and CI) runs it over ./... so the determinism, decode-seam,
// scratch-ownership, error-not-panic, bounded-fan-out, and
// deadline-propagation contracts are checked on every build, not re-argued
// in review.
//
// Usage:
//
//	ps3lint [-tests=false] [-only mapiter,nakedgo] [-list] [packages...]
//
// Packages default to ./... relative to the current directory. Suppressions
// are //lint:<analyzer>-ok <justification> on or directly above the flagged
// line; a directive without a justification suppresses nothing and is itself
// a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ps3/internal/analyzers/analysis"
	"ps3/internal/analyzers/ctxflow"
	"ps3/internal/analyzers/decodebypass"
	"ps3/internal/analyzers/load"
	"ps3/internal/analyzers/mapiter"
	"ps3/internal/analyzers/nakedgo"
	"ps3/internal/analyzers/panicfree"
	"ps3/internal/analyzers/scratchescape"
)

// analyzers is the registry, in reporting order.
var analyzers = []*analysis.Analyzer{
	mapiter.Analyzer,
	decodebypass.Analyzer,
	scratchescape.Analyzer,
	panicfree.Analyzer,
	nakedgo.Analyzer,
	ctxflow.Analyzer,
}

func main() {
	tests := flag.Bool("tests", true, "also analyze _test.go files with the analyzers that cover them")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := analyzers
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "ps3lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Analyze test variants only if some selected analyzer wants them.
	wantTests := false
	for _, a := range selected {
		wantTests = wantTests || a.IncludeTests
	}
	pkgs, err := load.Load(".", patterns, *tests && wantTests)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ps3lint: %v\n", err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		for _, a := range selected {
			if pkg.TestFiles != nil && !a.IncludeTests {
				continue
			}
			pass := &analysis.Pass{
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				Info:      pkg.Info,
				TestFiles: pkg.TestFiles,
			}
			diags, err := analysis.Run(a, pass)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ps3lint: %s on %s: %v\n", a.Name, pkg.ImportPath, err)
				os.Exit(2)
			}
			for _, d := range diags {
				fmt.Printf("%s: %s: %s\n", d.Pos, a.Name, d.Message)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "ps3lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
