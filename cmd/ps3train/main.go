// Command ps3train runs the offline phase of Fig 1 end to end and persists
// the result: it builds summary statistics, trains the partition picker on
// sampled workload queries, and writes a system snapshot that ps3serve (or
// any embedder calling core.OpenSnapshot) cold-starts from without
// retraining:
//
//	ps3train -dataset aria -rows 100000 -parts 200 -out /tmp/aria.snap
//	ps3train -dataset tpch -table /tmp/tpch.tbl -train 150 -out /tmp/tpch.snap
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ps3/internal/core"
	"ps3/internal/dataset"
	"ps3/internal/query"
	"ps3/internal/store"
)

func main() {
	var (
		name    = flag.String("dataset", "aria", "dataset defining schema+workload: tpch|tpcds|aria|kdd")
		rows    = flag.Int("rows", 0, "row count when generating (0 = default 100000)")
		parts   = flag.Int("parts", 0, "partition count when generating (0 = default 200)")
		tblPath = flag.String("table", "", "load the table from this binary file (written by ps3gen -out) instead of generating")
		train   = flag.Int("train", 100, "training queries to sample from the workload")
		lss     = flag.Bool("lss", false, "also fit the LSS baseline")
		seed    = flag.Int64("seed", 42, "generation/training seed")
		out     = flag.String("out", "", "write the trained-system snapshot to this path (required)")
	)
	flag.Parse()
	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}

	cfg := dataset.Config{Rows: *rows, Parts: *parts, Seed: *seed}
	if *tblPath != "" {
		// Only the workload definition is needed when the table comes from a
		// file; generate the smallest possible dataset instead of the full
		// default 100k rows (-rows/-parts apply to generation only).
		cfg.Rows, cfg.Parts = 64, 2
	}
	ds, err := dataset.ByName(*name, cfg)
	if err != nil {
		fatal(err)
	}
	tbl := ds.Table
	if *tblPath != "" {
		// Training is a repeated-full-scan workload, so either format is
		// materialized into RAM: the paged store only pays off at serve
		// time, when the picker reads a few partitions per query.
		ot, err := store.OpenTableFile(*tblPath, store.Options{})
		if err != nil {
			fatal(err)
		}
		tbl, err = ot.Materialize()
		if err != nil {
			fatal(err)
		}
		if err := ot.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("loaded table %s (%s format): %d rows, %d partitions\n",
			*tblPath, ot.Format, tbl.NumRows(), tbl.NumParts())
	}

	sys, err := core.New(tbl, core.Options{Workload: ds.Workload, TrainLSS: *lss, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	gen, err := query.NewGenerator(ds.Workload, tbl, *seed+1)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("training on %d workload queries (one full scan each)...\n", *train)
	t0 := time.Now()
	if err := sys.Train(gen.SampleN(*train), nil); err != nil {
		fatal(err)
	}
	fmt.Printf("trained in %v (%d funnel stages)\n", time.Since(t0).Round(time.Millisecond), len(sys.Picker.Regs))

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	n, err := sys.WriteTo(f)
	if err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote snapshot to %s (%.1f KB: stats + picker%s)\n",
		*out, float64(n)/1024, lssSuffix(*lss))
}

func lssSuffix(lss bool) string {
	if lss {
		return " + lss"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ps3train:", err)
	os.Exit(1)
}
