// Command ps3gen generates one of the synthetic evaluation datasets, prints
// its schema, layout and summary-statistics profile, and optionally exports
// the rows as CSV or the table in PS3's paged store format:
//
//	ps3gen -dataset aria -rows 100000 -parts 200
//	ps3gen -dataset tpch -csv /tmp/tpch.csv
//	ps3gen -dataset kdd -out /tmp/kdd.ps3
//
// With -in it instead converts an existing table file — sniffing legacy gob
// vs the paged store format — so old files migrate with one command:
//
//	ps3gen -in /tmp/old.tbl -out /tmp/new.ps3
//	ps3gen -in /tmp/new.ps3 -out /tmp/legacy.tbl -gob
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"ps3/internal/dataset"
	"ps3/internal/stats"
	"ps3/internal/store"
	"ps3/internal/table"
)

func main() {
	var (
		name   = flag.String("dataset", "aria", "dataset: tpch|tpcds|aria|kdd")
		rows   = flag.Int("rows", 0, "row count (0 = default 100000)")
		parts  = flag.Int("parts", 0, "partition count (0 = default 200)")
		seed   = flag.Int64("seed", 42, "generation seed")
		layout = flag.String("layout", "", "comma-separated sort columns overriding the default layout ('random' shuffles)")
		csvOut = flag.String("csv", "", "write rows as CSV to this path")
		binOut = flag.String("out", "", "write the table to this path (paged store format unless -gob)")
		gobOut = flag.Bool("gob", false, "write -out in the legacy gob format instead of the paged store format")
		rawOut = flag.Bool("raw", false, "write -out store blocks uncompressed (v1 layout) instead of encoded")
		in     = flag.String("in", "", "convert: load this table file (either format) instead of generating a dataset")
	)
	flag.Parse()
	if *gobOut && *binOut == "" {
		fatal(fmt.Errorf("-gob selects the encoding of -out; pass -out as well"))
	}
	if *rawOut && (*binOut == "" || *gobOut) {
		fatal(fmt.Errorf("-raw selects uncompressed paged-store blocks; pass -out without -gob"))
	}

	var t *table.Table
	// encodingHints feeds ingest-time sketches to the store's encoding
	// chooser when the generate path builds them anyway; conversion writes
	// without hints (same encodings, chooser scans the blocks itself).
	var encodingHints func(part, col int) (store.ColHint, bool)
	if *in != "" {
		// Conversion keeps the input's rows and layout verbatim: generation
		// flags would be silently ignored, so reject them instead of letting
		// the user believe a re-sort or re-size happened.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "dataset", "rows", "parts", "seed", "layout":
				fatal(fmt.Errorf("-%s applies to dataset generation and has no effect with -in; re-layout the table before exporting", f.Name))
			}
		})
		ot, err := store.OpenTableFile(*in, store.Options{})
		if err != nil {
			fatal(err)
		}
		t, err = ot.Materialize()
		if err != nil {
			fatal(err)
		}
		if err := ot.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %s (%s format): %d rows, %d partitions, %.1f MB\n",
			*in, ot.Format, t.NumRows(), t.NumParts(), float64(t.TotalBytes())/(1<<20))
	} else {
		ds, err := dataset.ByName(*name, dataset.Config{Rows: *rows, Parts: *parts, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		if *layout != "" {
			var cols []string
			if *layout != "random" {
				cols = strings.Split(*layout, ",")
			}
			ds, err = ds.WithLayout(cols)
			if err != nil {
				fatal(err)
			}
		}
		t = ds.Table

		fmt.Printf("dataset %s: %d rows, %d partitions, layout %v\n", ds.Name, t.NumRows(), t.NumParts(), ds.SortCols)
		fmt.Printf("storage: %.1f MB (%.1f KB/partition)\n",
			float64(t.TotalBytes())/(1<<20), float64(t.TotalBytes())/float64(t.NumParts())/1024)
		fmt.Println("\nschema:")
		for _, c := range t.Schema.Cols {
			pos := ""
			if c.Positive {
				pos = " (positive)"
			}
			fmt.Printf("  %-32s %s%s\n", c.Name, c.Kind, pos)
		}

		ts, err := stats.Build(t, stats.Options{GroupableCols: ds.Workload.GroupableCols})
		if err != nil {
			fatal(err)
		}
		encodingHints = store.HintsFromStats(ts)
		sz := ts.Sizes()
		fmt.Printf("\nsummary statistics: %.1f KB/partition (hist %.1f, hh %.1f, akmv %.1f, measures %.1f)\n",
			sz.Total/1024, sz.Histogram/1024, sz.HH/1024, sz.AKMV/1024, sz.Measure/1024)
		fmt.Printf("feature dimension: %d\n", ts.Space.Dim())
		fmt.Printf("workload: %d groupable, %d predicate, %d aggregate columns\n",
			len(ds.Workload.GroupableCols), len(ds.Workload.PredicateCols), len(ds.Workload.AggCols))
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		bw := bufio.NewWriter(f)
		if err := t.WriteCSV(bw); err != nil {
			fatal(err)
		}
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote CSV to %s\n", *csvOut)
	}
	if *binOut != "" {
		if *gobOut {
			f, err := os.Create(*binOut)
			if err != nil {
				fatal(err)
			}
			if _, err := t.WriteTo(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote legacy gob table to %s\n", *binOut)
			return
		}
		n, err := store.WriteFileWith(*binOut, t, store.WriteOptions{Raw: *rawOut, Hints: encodingHints})
		if err != nil {
			fatal(err)
		}
		if *rawOut {
			fmt.Printf("wrote paged store to %s (%.1f MB, %d partition blocks, raw)\n",
				*binOut, float64(n)/(1<<20), t.NumParts())
		} else {
			r, err := store.Open(*binOut, store.Options{})
			if err != nil {
				fatal(err)
			}
			es := r.EncodingStats()
			if err := r.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote paged store to %s (%.1f MB, %d partition blocks, %.2fx block compression)\n",
				*binOut, float64(n)/(1<<20), t.NumParts(), es.Ratio)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ps3gen:", err)
	os.Exit(1)
}
