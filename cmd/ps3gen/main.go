// Command ps3gen generates one of the synthetic evaluation datasets, prints
// its schema, layout and summary-statistics profile, and optionally exports
// the rows as CSV or the table in PS3's paged store format:
//
//	ps3gen -dataset aria -rows 100000 -parts 200
//	ps3gen -dataset tpch -csv /tmp/tpch.csv
//	ps3gen -dataset kdd -out /tmp/kdd.ps3
//
// With -in it instead converts an existing table file — sniffing legacy gob
// vs the paged store format — so old files migrate with one command:
//
//	ps3gen -in /tmp/old.tbl -out /tmp/new.ps3
//	ps3gen -in /tmp/new.ps3 -out /tmp/legacy.tbl -gob
//
// With -stream it replays the table (generated or loaded) as an append
// workload against a live ps3serve -ingest process, batch by batch:
//
//	ps3gen -dataset aria -rows 20000 -stream http://localhost:8080
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"ps3/internal/dataset"
	"ps3/internal/stats"
	"ps3/internal/store"
	"ps3/internal/table"
)

func main() {
	var (
		name   = flag.String("dataset", "aria", "dataset: tpch|tpcds|aria|kdd")
		rows   = flag.Int("rows", 0, "row count (0 = default 100000)")
		parts  = flag.Int("parts", 0, "partition count (0 = default 200)")
		seed   = flag.Int64("seed", 42, "generation seed")
		layout = flag.String("layout", "", "comma-separated sort columns overriding the default layout ('random' shuffles)")
		csvOut = flag.String("csv", "", "write rows as CSV to this path")
		binOut = flag.String("out", "", "write the table to this path (paged store format unless -gob)")
		gobOut = flag.Bool("gob", false, "write -out in the legacy gob format instead of the paged store format")
		rawOut = flag.Bool("raw", false, "write -out store blocks uncompressed (v1 layout) instead of encoded")
		in     = flag.String("in", "", "convert: load this table file (either format) instead of generating a dataset")

		stream      = flag.String("stream", "", "replay the table as POST /append batches against this ps3serve base URL (e.g. http://localhost:8080)")
		streamBatch = flag.Int("streambatch", 256, "rows per append batch for -stream")
	)
	flag.Parse()
	if *gobOut && *binOut == "" {
		fatal(fmt.Errorf("-gob selects the encoding of -out; pass -out as well"))
	}
	if *rawOut && (*binOut == "" || *gobOut) {
		fatal(fmt.Errorf("-raw selects uncompressed paged-store blocks; pass -out without -gob"))
	}

	var t *table.Table
	// encodingHints feeds ingest-time sketches to the store's encoding
	// chooser when the generate path builds them anyway; conversion writes
	// without hints (same encodings, chooser scans the blocks itself).
	var encodingHints func(part, col int) (store.ColHint, bool)
	if *in != "" {
		// Conversion keeps the input's rows and layout verbatim: generation
		// flags would be silently ignored, so reject them instead of letting
		// the user believe a re-sort or re-size happened.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "dataset", "rows", "parts", "seed", "layout":
				fatal(fmt.Errorf("-%s applies to dataset generation and has no effect with -in; re-layout the table before exporting", f.Name))
			}
		})
		ot, err := store.OpenTableFile(*in, store.Options{})
		if err != nil {
			fatal(err)
		}
		t, err = ot.Materialize()
		if err != nil {
			fatal(err)
		}
		if err := ot.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %s (%s format): %d rows, %d partitions, %.1f MB\n",
			*in, ot.Format, t.NumRows(), t.NumParts(), float64(t.TotalBytes())/(1<<20))
	} else {
		ds, err := dataset.ByName(*name, dataset.Config{Rows: *rows, Parts: *parts, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		if *layout != "" {
			var cols []string
			if *layout != "random" {
				cols = strings.Split(*layout, ",")
			}
			ds, err = ds.WithLayout(cols)
			if err != nil {
				fatal(err)
			}
		}
		t = ds.Table

		fmt.Printf("dataset %s: %d rows, %d partitions, layout %v\n", ds.Name, t.NumRows(), t.NumParts(), ds.SortCols)
		fmt.Printf("storage: %.1f MB (%.1f KB/partition)\n",
			float64(t.TotalBytes())/(1<<20), float64(t.TotalBytes())/float64(t.NumParts())/1024)
		fmt.Println("\nschema:")
		for _, c := range t.Schema.Cols {
			pos := ""
			if c.Positive {
				pos = " (positive)"
			}
			fmt.Printf("  %-32s %s%s\n", c.Name, c.Kind, pos)
		}

		ts, err := stats.Build(t, stats.Options{GroupableCols: ds.Workload.GroupableCols})
		if err != nil {
			fatal(err)
		}
		encodingHints = store.HintsFromStats(ts)
		sz := ts.Sizes()
		fmt.Printf("\nsummary statistics: %.1f KB/partition (hist %.1f, hh %.1f, akmv %.1f, measures %.1f)\n",
			sz.Total/1024, sz.Histogram/1024, sz.HH/1024, sz.AKMV/1024, sz.Measure/1024)
		fmt.Printf("feature dimension: %d\n", ts.Space.Dim())
		fmt.Printf("workload: %d groupable, %d predicate, %d aggregate columns\n",
			len(ds.Workload.GroupableCols), len(ds.Workload.PredicateCols), len(ds.Workload.AggCols))
	}

	if *stream != "" {
		if err := streamTable(*stream, t, *streamBatch); err != nil {
			fatal(err)
		}
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		bw := bufio.NewWriter(f)
		if err := t.WriteCSV(bw); err != nil {
			fatal(err)
		}
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote CSV to %s\n", *csvOut)
	}
	if *binOut != "" {
		if *gobOut {
			f, err := os.Create(*binOut)
			if err != nil {
				fatal(err)
			}
			if _, err := t.WriteTo(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote legacy gob table to %s\n", *binOut)
			return
		}
		n, err := store.WriteFileWith(*binOut, t, store.WriteOptions{Raw: *rawOut, Hints: encodingHints})
		if err != nil {
			fatal(err)
		}
		if *rawOut {
			fmt.Printf("wrote paged store to %s (%.1f MB, %d partition blocks, raw)\n",
				*binOut, float64(n)/(1<<20), t.NumParts())
		} else {
			r, err := store.Open(*binOut, store.Options{})
			if err != nil {
				fatal(err)
			}
			es := r.EncodingStats()
			if err := r.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote paged store to %s (%.1f MB, %d partition blocks, %.2fx block compression)\n",
				*binOut, float64(n)/(1<<20), t.NumParts(), es.Ratio)
		}
	}
}

// streamTable replays t's rows in partition order as POST /append batches.
// Cells go out positionally in schema order: numbers for numeric columns
// (NaN as null — JSON has no NaN literal; the server decodes null back to
// NaN), strings for categorical ones. Each batch is acknowledged only
// after the server has it durably logged, so a completed stream survives a
// server crash.
func streamTable(baseURL string, t *table.Table, batch int) error {
	if batch <= 0 {
		batch = 256
	}
	url := strings.TrimRight(baseURL, "/") + "/append"
	client := &http.Client{Timeout: 30 * time.Second}
	var (
		rows    [][]any
		sent    int
		batches int
	)
	start := time.Now()
	flush := func() error {
		if len(rows) == 0 {
			return nil
		}
		body, err := json.Marshal(map[string]any{"rows": rows})
		if err != nil {
			return err
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return fmt.Errorf("append batch %d: server returned %s: %s", batches, resp.Status, strings.TrimSpace(string(msg)))
		}
		sent += len(rows)
		batches++
		rows = rows[:0]
		return nil
	}
	for _, p := range t.Parts {
		for r := 0; r < p.Rows(); r++ {
			row := make([]any, len(t.Schema.Cols))
			for c, col := range t.Schema.Cols {
				if col.IsNumeric() {
					v := p.NumCol(c)[r]
					if math.IsNaN(v) {
						row[c] = nil
					} else {
						row[c] = v
					}
				} else {
					row[c] = t.Dict.Value(p.CatCol(c)[r])
				}
			}
			rows = append(rows, row)
			if len(rows) >= batch {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	rate := float64(sent) / elapsed.Seconds()
	fmt.Printf("streamed %d rows in %d batches to %s in %v (%.0f rows/s)\n", sent, batches, url, elapsed.Round(time.Millisecond), rate)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ps3gen:", err)
	os.Exit(1)
}
