// Command ps3query runs one query both exactly and approximately at a
// sampling budget, showing the answers side by side with the achieved error
// and I/O savings — the online path of Fig 1 end to end:
//
//	ps3query -dataset aria -budget 0.05
//	ps3query -dataset tpch -budget 0.01 -train 150 -query 3
//	ps3query -dataset aria -sql "SELECT TenantId, COUNT(*) FROM t GROUP BY TenantId"
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"ps3/internal/core"
	"ps3/internal/dataset"
	"ps3/internal/diagnose"
	"ps3/internal/query"
	"ps3/internal/sql"
)

func main() {
	var (
		name    = flag.String("dataset", "aria", "dataset: tpch|tpcds|aria|kdd")
		rows    = flag.Int("rows", 60000, "row count")
		parts   = flag.Int("parts", 150, "partition count")
		budget  = flag.Float64("budget", 0.05, "fraction of partitions to read")
		train   = flag.Int("train", 80, "training queries")
		qIdx    = flag.Int("query", 0, "which of the sampled demo queries to run")
		sqlText = flag.String("sql", "", "run this SQL query instead of a sampled demo query")
		seed    = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	ds, err := dataset.ByName(*name, dataset.Config{Rows: *rows, Parts: *parts, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	sys, err := core.New(ds.Table, core.Options{Workload: ds.Workload, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	gen, err := query.NewGenerator(ds.Workload, ds.Table, *seed+1)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("training PS3 on %d workload queries...\n", *train)
	if err := sys.Train(gen.SampleN(*train), nil); err != nil {
		fatal(err)
	}

	var q *query.Query
	if *sqlText != "" {
		q, _, err = sql.Parse(*sqlText)
		if err != nil {
			fatal(err)
		}
	} else {
		demo := gen.SampleN(*qIdx + 1)
		q = demo[*qIdx]
	}
	fmt.Printf("\nquery: %s\n\n", q)

	// Surface known failure modes before running (§7 diagnostics).
	for _, f := range diagnose.Query(q, sys.Stats, ds.Workload, diagnose.Options{}) {
		fmt.Println(f)
	}

	exact, err := sys.RunExact(q)
	if err != nil {
		fatal(err)
	}
	approx, err := sys.Run(q, *budget)
	if err != nil {
		fatal(err)
	}

	if len(exact.Values) == 0 {
		fmt.Println("no rows match the predicate — the exact answer is empty.")
		fmt.Printf("PS3 read %d of %d partitions (the selectivity filter prunes partitions that cannot match).\n",
			approx.PartsRead, ds.Table.NumParts())
		fmt.Println("try another demo query with -query N")
		return
	}

	// Align groups, largest truth first.
	keys := make([]string, 0, len(exact.Values))
	for g := range exact.Values {
		keys = append(keys, g)
	}
	sort.Slice(keys, func(a, b int) bool {
		return math.Abs(exact.Values[keys[a]][0]) > math.Abs(exact.Values[keys[b]][0])
	})
	if len(keys) > 15 {
		fmt.Printf("(showing top 15 of %d groups)\n", len(keys))
		keys = keys[:15]
	}
	fmt.Printf("%-40s%18s%18s%10s\n", "group", "exact", "approx", "rel err")
	var relSum float64
	relCnt := 0
	for _, g := range keys {
		ev := exact.Values[g]
		av, ok := approx.Values[g]
		for j := range ev {
			var a float64
			if ok {
				a = av[j]
			}
			rel := 1.0
			if ev[j] != 0 {
				rel = math.Abs(a-ev[j]) / math.Abs(ev[j])
			}
			relSum += math.Min(rel, 1)
			relCnt++
			label := exact.Labels[g]
			if j > 0 {
				label = ""
			}
			fmt.Printf("%-40s%18.2f%18.2f%9.1f%%\n", truncate(label, 40), ev[j], a, rel*100)
		}
	}
	if relCnt > 0 {
		fmt.Printf("\navg relative error (shown groups): %.2f%%\n", relSum/float64(relCnt)*100)
	}
	fmt.Printf("partitions read: %d of %d (%.1f%%), weights sum %.1f\n",
		approx.PartsRead, ds.Table.NumParts(), approx.FracRead*100, weightSum(approx.Selection))
}

func weightSum(sel []query.WeightedPartition) float64 {
	var s float64
	for _, wp := range sel {
		s += wp.Weight
	}
	return s
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ps3query:", err)
	os.Exit(1)
}
