// Command ps3bench regenerates the paper's tables and figures on the
// simulated substrate. Each experiment id maps to one artifact of the
// evaluation section (see DESIGN.md's per-experiment index):
//
//	ps3bench -exp fig3  -dataset aria          # error vs budget, one dataset
//	ps3bench -exp fig3                         # ... all four datasets
//	ps3bench -exp table4                       # sketch storage breakdown
//	ps3bench -exp all                          # everything
//
// Scale flags (-rows, -parts, -train, -test, -runs) trade fidelity for
// runtime; defaults complete in minutes on a laptop. All scans run on the
// shared internal/exec worker pool; -parallelism bounds its width without
// changing any reported number. Table 5 (picker overhead) measures the
// production batched pick path — pooled featurization plus flat-ensemble
// funnel evaluation at Parallelism=1; `make bench-pick` has the
// micro-benchmarks comparing it against the retained pointer-tree
// reference.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ps3/internal/dataset"
	"ps3/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: fig3|table3|table4|table5|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|table6|table7|table8|all")
		ds      = flag.String("dataset", "", "dataset for single-dataset experiments (tpch|tpcds|aria|kdd; empty = paper's choice or all)")
		rows    = flag.Int("rows", 0, "rows per dataset (0 = default 60000)")
		parts   = flag.Int("parts", 0, "partitions per dataset (0 = default 150)")
		train   = flag.Int("train", 0, "training queries (0 = default 100; paper: 400)")
		test    = flag.Int("test", 0, "test queries (0 = default 30; paper: 100)")
		runs    = flag.Int("runs", 0, "repetitions for randomized methods (0 = default 3; paper: 10)")
		budgets = flag.String("budgets", "", "comma-separated budget fractions (default 0.01,0.05,0.1,0.2,0.4,0.6,0.8)")
		noFS    = flag.Bool("no-feature-selection", false, "disable Algorithm 3 feature selection")
		seed    = flag.Int64("seed", 42, "master random seed")
		par     = flag.Int("parallelism", 0, "worker goroutines for partition scans and per-query evaluation (0 = GOMAXPROCS; results are identical at any setting)")
	)
	flag.Parse()

	cfg := experiments.Config{
		Rows: *rows, Parts: *parts,
		TrainQueries: *train, TestQueries: *test,
		Runs: *runs, Seed: *seed,
		NoFeatureSelection: *noFS,
		Parallelism:        *par,
	}
	if *ds != "" && !validDataset(*ds) {
		fatalf("unknown dataset %q (want one of %s)", *ds, strings.Join(dataset.Names(), "|"))
	}
	if *budgets != "" {
		for _, s := range strings.Split(*budgets, ",") {
			b, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || b <= 0 || b > 1 {
				fatalf("invalid budget %q", s)
			}
			cfg.Budgets = append(cfg.Budgets, b)
		}
	}

	w := os.Stdout
	start := time.Now()
	run := func(id string) error {
		switch id {
		case "fig3":
			if *ds != "" {
				_, err := experiments.RunFig3(w, *ds, cfg)
				return err
			}
			_, err := experiments.RunFig3All(w, cfg)
			return err
		case "table3":
			_, err := experiments.RunTable3(w, cfg)
			return err
		case "table4":
			_, err := experiments.RunTable4(w, cfg)
			return err
		case "table5":
			_, err := experiments.RunTable5(w, cfg)
			return err
		case "fig4":
			name := *ds
			if name == "" {
				name = "aria" // the paper's Fig 4 dataset
			}
			_, err := experiments.RunFig4(w, name, cfg)
			return err
		case "fig5":
			_, err := experiments.RunFig5(w, cfg)
			return err
		case "fig6":
			_, err := experiments.RunFig6(w, cfg)
			return err
		case "fig7":
			_, err := experiments.RunFig7(w, cfg)
			return err
		case "fig8":
			_, err := experiments.RunFig8(w, cfg)
			return err
		case "fig9", "fig11":
			_, err := experiments.RunFig9(w, cfg, 0)
			return err
		case "fig10":
			name := *ds
			if name == "" {
				name = "kdd" // the paper's Fig 10 dataset
			}
			_, err := experiments.RunFig10(w, name, cfg, nil)
			return err
		case "fig12":
			_, err := experiments.RunFig12(w, cfg)
			return err
		case "table6":
			_, err := experiments.RunTable6(w, cfg)
			return err
		case "table7":
			_, err := experiments.RunTable7(w, cfg)
			return err
		case "table8":
			_, err := experiments.RunTable8(w, cfg)
			return err
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table4", "table3", "fig3", "fig4", "fig5", "table5",
			"fig6", "fig7", "fig8", "fig9", "fig10", "fig12", "table6", "table7", "table8"}
	}
	for _, id := range ids {
		fmt.Fprintf(w, "\n===== %s =====\n", id)
		t0 := time.Now()
		if err := run(id); err != nil {
			fatalf("%s: %v", id, err)
		}
		fmt.Fprintf(w, "[%s done in %s]\n", id, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(w, "\nall experiments done in %s\n", time.Since(start).Round(time.Millisecond))
}

// validDataset reports whether name is a known dataset id.
func validDataset(name string) bool {
	for _, n := range dataset.Names() {
		if n == name {
			return true
		}
	}
	return false
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ps3bench: "+format+"\n", args...)
	os.Exit(1)
}
