// Command ps3serve is the online half of the paper's deployment model: it
// cold-starts a trained PS3 system from a snapshot (no retraining — the
// offline pass was paid once by ps3train) and serves approximate queries
// over HTTP/JSON:
//
//	ps3serve -table /tmp/aria.ps3 -snapshot /tmp/aria.snap -addr :8080
//	curl -s localhost:8080/query -d '{"sql":"SELECT TenantId, COUNT(*) FROM t GROUP BY TenantId","budget":0.05}'
//	curl -s localhost:8080/stats
//
// When -table is in the paged store format (ps3gen's default output), the
// data stays on disk: each request faults only the partitions the picker
// selected through a cache bounded by -cachebytes, so memory and cold-start
// cost scale with the cache budget, not the dataset. Legacy gob tables are
// detected automatically and load fully resident.
//
// With -loadgen it instead benchmarks sustained concurrent throughput
// against the in-process server, cycling over sampled workload queries:
//
//	ps3serve -table /tmp/aria.ps3 -snapshot /tmp/aria.snap -loadgen -requests 2000 -concurrency 16
//
// With -ingest the server also accepts live appends (POST /append, or the
// programmatic sink): rows are written through a crash-safe WAL, flushed as
// store-format segments, and each flush extends the statistics and swaps a
// fresh snapshot in — queries keep the trained picker over the growing
// dataset without retraining. -loadgen -appendevery N mixes one append
// batch into every N operations to exercise serving under write traffic.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"ps3/internal/core"
	"ps3/internal/ingest"
	"ps3/internal/query"
	"ps3/internal/serve"
	"ps3/internal/store"
	"ps3/internal/table"
)

func main() {
	var (
		tblPath    = flag.String("table", "", "table data file (paged store or legacy gob, written by ps3gen -out); required")
		snapPath   = flag.String("snapshot", "", "trained-system snapshot (written by ps3train -out); required")
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		budget     = flag.Float64("budget", 0.05, "default budget fraction for requests that omit one")
		cache      = flag.Int("cache", 0, "compiled-query cache entries (0 = default 256)")
		cacheBytes = flag.Int64("cachebytes", 0, "partition cache budget in bytes for store-format tables (0 = default 256 MiB, negative = unbounded)")
		inflight   = flag.Int("maxinflight", 0, "max concurrent partition scans (0 = 2×GOMAXPROCS)")
		maxQueue   = flag.Int("maxqueue", 0, "queries queued beyond -maxinflight before shedding with 503 (0 = 4×maxinflight, negative = unbounded)")
		reqTimeout = flag.Duration("request-timeout", 0, "per-request serving deadline; exceeded requests return 504 (0 = none)")
		drainWait  = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for draining in-flight queries on SIGTERM/SIGINT")

		pickCache = flag.Int("pickcache", 0, "pick-result cache entries (0 = default 512, negative = disabled)")

		ingestOn     = flag.Bool("ingest", false, "accept live appends (POST /append): WAL, segment flushes, incremental stats, hot snapshot swaps")
		walDir       = flag.String("waldir", "", "ingest: directory for WALs and segments (default <table>.ingest)")
		flushRows    = flag.Int("flushrows", 0, "ingest: rows per flushed partition (0 = match the base table's partitioning)")
		commitWindow = flag.Duration("commitwindow", 2*time.Millisecond, "ingest: WAL group-commit window; 0 fsyncs every append")
		publishTail  = flag.Bool("publishtail", false, "ingest: include unflushed memtable rows in published snapshots")

		loadgen = flag.Bool("loadgen", false, "run the load generator instead of listening")
		queries = flag.Int("queries", 20, "loadgen: distinct workload queries to cycle over")
		reqs    = flag.Int("requests", 1000, "loadgen: total requests")
		conc    = flag.Int("concurrency", 8, "loadgen: concurrent client workers")
		seed    = flag.Int64("seed", 99, "loadgen: query sampling seed")
		traffic = flag.String("traffic", "roundrobin", "loadgen: traffic shape over the query pool: roundrobin or zipf")
		zipfS   = flag.Float64("zipf-s", 1.3, "loadgen: Zipf exponent for -traffic=zipf (must be > 1; larger = hotter head)")

		appendEvery = flag.Int("appendevery", 0, "loadgen: make every Nth operation an append batch (requires -ingest; 0 = query-only)")
		appendRows  = flag.Int("appendrows", 64, "loadgen: rows per append batch for -appendevery")
	)
	flag.Parse()
	if *tblPath == "" || *snapPath == "" {
		fatal(fmt.Errorf("-table and -snapshot are required"))
	}

	t0 := time.Now()
	ot, err := store.OpenTableFile(*tblPath, store.Options{CacheBytes: *cacheBytes})
	if err != nil {
		fatal(err)
	}
	defer ot.Close()
	sf, err := os.Open(*snapPath)
	if err != nil {
		fatal(err)
	}
	sys, err := core.OpenSnapshot(sf, ot.Source)
	if err != nil {
		fatal(err)
	}
	if err := sf.Close(); err != nil {
		fatal(err)
	}
	srv, err := serve.New(sys, serve.Config{
		DefaultBudget:  *budget,
		CacheSize:      *cache,
		PickCacheSize:  *pickCache,
		MaxInFlight:    *inflight,
		MaxQueue:       *maxQueue,
		RequestTimeout: *reqTimeout,
	})
	if err != nil {
		fatal(err)
	}
	mode := "fully resident (legacy gob)"
	if ot.Reader != nil {
		mode = fmt.Sprintf("paged, %s partition cache", budgetSize(ot.Reader.CacheStats().BudgetBytes))
	}
	fmt.Printf("cold start in %v: %d rows, %d partitions (%s of data), %s, trained picker restored\n",
		time.Since(t0).Round(time.Millisecond), ot.Source.NumRows(), ot.Source.NumParts(),
		byteSize(int64(ot.Source.TotalBytes())), mode)

	var pipe *ingest.Pipeline
	if *ingestOn {
		dir := *walDir
		if dir == "" {
			dir = *tblPath + ".ingest"
		}
		rpp := *flushRows
		if rpp <= 0 && ot.Source.NumParts() > 0 {
			rpp = ot.Source.NumRows() / ot.Source.NumParts()
		}
		pipe, err = ingest.Open(ingest.Config{
			Dir:          dir,
			RowsPerPart:  rpp,
			CommitWindow: *commitWindow,
			PublishTail:  *publishTail,
			CacheBytes:   *cacheBytes,
			OnPublish: func(snap *core.System, version int) {
				if err := srv.Swap(snap); err != nil {
					fmt.Fprintf(os.Stderr, "ps3serve: swap snapshot %d: %v\n", version, err)
				}
			},
		}, sys)
		if err != nil {
			fatal(err)
		}
		defer pipe.Close()
		st := pipe.Stats()
		if st.Segments > 0 || (*publishTail && st.PendingRows > 0) {
			snap, _, err := pipe.Snapshot()
			if err != nil {
				fatal(err)
			}
			if err := srv.Swap(snap); err != nil {
				fatal(err)
			}
		}
		srv.SetAppender(pipe)
		fmt.Printf("ingest: %s, %d rows per partition, %v commit window; recovered %d segments, %d WAL rows\n",
			dir, rpp, *commitWindow, st.Segments, st.RecoveredRows)
	} else if *appendEvery > 0 {
		fatal(fmt.Errorf("-appendevery requires -ingest"))
	}

	if *loadgen {
		gen, err := query.NewGenerator(sys.Opts.Workload, ot.Source, *seed)
		if err != nil {
			fatal(err)
		}
		qs := gen.SampleN(*queries)
		// Sampling predicate constants faulted partitions in through the
		// cache; baseline the counters so the report covers serving only.
		var base store.CacheStats
		if ot.Reader != nil {
			base = ot.Reader.CacheStats()
		}
		fmt.Printf("loadgen: %d requests over %d queries (%s traffic), %d workers, budget %.2f\n",
			*reqs, len(qs), *traffic, *conc, *budget)
		var rep serve.LoadReport
		switch {
		case *appendEvery > 0:
			var batch func() ([][]float64, [][]string)
			batch, err = batchSource(ot.Source, *appendRows)
			if err == nil {
				rep, err = srv.LoadGenMixed(qs, *budget, *conc, *reqs, *appendEvery, batch)
			}
		case *traffic == "roundrobin":
			rep, err = srv.LoadGen(qs, *budget, *conc, *reqs)
		case *traffic == "zipf":
			rep, err = srv.LoadGenZipf(qs, *budget, *conc, *reqs, *zipfS, *seed)
		default:
			err = fmt.Errorf("unknown -traffic %q (want roundrobin or zipf)", *traffic)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep)
		if pipe != nil {
			st := pipe.Stats()
			fmt.Printf("ingest: %d batches (%d rows) appended, %d flushes, %d segments (%d partitions), %d rows pending, snapshot version %d\n",
				st.AppendBatches, st.RowsAppended, st.Flushes, st.Segments, st.SegmentParts, st.PendingRows, st.Version)
		}
		m := srv.Stats()
		fmt.Printf("query cache: %d hits / %d misses (%d entries)\n", m.CacheHits, m.CacheMisses, m.CacheLen)
		if m.PickCache != nil {
			fmt.Printf("pick cache: %d hits / %d misses / %d evictions (%d entries, avg hit age %.0fms)\n",
				m.PickCache.Hits, m.PickCache.Misses, m.PickCache.Evictions, m.PickCache.Entries, m.PickCache.AvgHitAgeMs)
		}
		if m.Store != nil {
			fmt.Printf("partition cache: %d hits / %d misses / %d evictions, %s faulted in, %s resident (budget %s)\n",
				m.Store.Hits-base.Hits, m.Store.Misses-base.Misses, m.Store.Evictions-base.Evictions,
				byteSize(m.Store.LoadedBytes-base.LoadedBytes), byteSize(m.Store.ResidentBytes), budgetSize(m.Store.BudgetBytes))
		}
		return
	}

	endpoints := "POST /query, GET /stats, GET /healthz, GET /readyz"
	if pipe != nil {
		endpoints = "POST /query, POST /append, GET /stats, GET /healthz, GET /readyz"
	}
	fmt.Printf("listening on %s (%s)\n", *addr, endpoints)

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }() //lint:nakedgo-ok listener lifecycle goroutine, joined via errc before exit

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way

	// Graceful shutdown: flip /readyz so load balancers stop routing here,
	// shed new queries, let in-flight ones finish within the drain budget,
	// then close the write path (the deferred pipe.Close commits the WAL).
	fmt.Printf("shutting down: draining for up to %v\n", *drainWait)
	srv.StartDrain()
	sctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "ps3serve: drain: %v (abandoning in-flight queries)\n", err)
	}
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "ps3serve: shutdown: %v\n", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

// batchSource cycles rows out of the base table as append batches: batch
// calls return consecutive windows of the first partition's rows, decoded
// back to append wire form. Safe for concurrent use (the cursor is
// atomic); real deployments append new data, the loadgen replays existing
// rows to exercise the write path.
func batchSource(src table.PartitionSource, batch int) (func() ([][]float64, [][]string), error) {
	if batch <= 0 {
		batch = 64
	}
	p, err := src.Read(0)
	if err != nil {
		return nil, err
	}
	schema, dict := src.TableSchema(), src.TableDict()
	rows := p.Rows()
	num := make([][]float64, rows)
	cat := make([][]string, rows)
	for r := 0; r < rows; r++ {
		nr := make([]float64, len(schema.Cols))
		cr := make([]string, len(schema.Cols))
		for c, col := range schema.Cols {
			if col.IsNumeric() {
				nr[c] = p.NumCol(c)[r]
			} else {
				cr[c] = dict.Value(p.CatCol(c)[r])
			}
		}
		num[r], cat[r] = nr, cr
	}
	var cursor atomic.Int64
	return func() ([][]float64, [][]string) {
		start := int(cursor.Add(int64(batch))-int64(batch)) % rows
		bn := make([][]float64, 0, batch)
		bc := make([][]string, 0, batch)
		for i := 0; i < batch; i++ {
			r := (start + i) % rows
			bn = append(bn, num[r])
			bc = append(bc, cat[r])
		}
		return bn, bc
	}, nil
}

// byteSize renders a byte count for humans.
func byteSize(n int64) string {
	switch {
	case n < 1<<20:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	case n < 1<<30:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	}
}

// budgetSize is byteSize for cache budget positions, where 0 means the
// cache is unbounded.
func budgetSize(n int64) string {
	if n <= 0 {
		return "unbounded"
	}
	return byteSize(n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ps3serve:", err)
	os.Exit(1)
}
