// Command ps3serve is the online half of the paper's deployment model: it
// cold-starts a trained PS3 system from a snapshot (no retraining — the
// offline pass was paid once by ps3train) and serves approximate queries
// over HTTP/JSON:
//
//	ps3serve -table /tmp/aria.tbl -snapshot /tmp/aria.snap -addr :8080
//	curl -s localhost:8080/query -d '{"sql":"SELECT TenantId, COUNT(*) FROM t GROUP BY TenantId","budget":0.05}'
//	curl -s localhost:8080/stats
//
// With -loadgen it instead benchmarks sustained concurrent throughput
// against the in-process server, cycling over sampled workload queries:
//
//	ps3serve -table /tmp/aria.tbl -snapshot /tmp/aria.snap -loadgen -requests 2000 -concurrency 16
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"ps3/internal/core"
	"ps3/internal/query"
	"ps3/internal/serve"
	"ps3/internal/table"
)

func main() {
	var (
		tblPath  = flag.String("table", "", "binary table file (written by ps3gen -out); required")
		snapPath = flag.String("snapshot", "", "trained-system snapshot (written by ps3train -out); required")
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		budget   = flag.Float64("budget", 0.05, "default budget fraction for requests that omit one")
		cache    = flag.Int("cache", 0, "compiled-query cache entries (0 = default 256)")
		inflight = flag.Int("maxinflight", 0, "max concurrent partition scans (0 = 2×GOMAXPROCS)")

		loadgen = flag.Bool("loadgen", false, "run the load generator instead of listening")
		queries = flag.Int("queries", 20, "loadgen: distinct workload queries to cycle over")
		reqs    = flag.Int("requests", 1000, "loadgen: total requests")
		conc    = flag.Int("concurrency", 8, "loadgen: concurrent client workers")
		seed    = flag.Int64("seed", 99, "loadgen: query sampling seed")
	)
	flag.Parse()
	if *tblPath == "" || *snapPath == "" {
		fatal(fmt.Errorf("-table and -snapshot are required"))
	}

	t0 := time.Now()
	tf, err := os.Open(*tblPath)
	if err != nil {
		fatal(err)
	}
	tbl, err := table.ReadTable(tf)
	if err != nil {
		fatal(err)
	}
	if err := tf.Close(); err != nil {
		fatal(err)
	}
	sf, err := os.Open(*snapPath)
	if err != nil {
		fatal(err)
	}
	sys, err := core.OpenSnapshot(sf, tbl)
	if err != nil {
		fatal(err)
	}
	if err := sf.Close(); err != nil {
		fatal(err)
	}
	srv, err := serve.New(sys, serve.Config{DefaultBudget: *budget, CacheSize: *cache, MaxInFlight: *inflight})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cold start in %v: %d rows, %d partitions, trained picker restored (no retraining)\n",
		time.Since(t0).Round(time.Millisecond), tbl.NumRows(), tbl.NumParts())

	if *loadgen {
		gen, err := query.NewGenerator(sys.Opts.Workload, tbl, *seed)
		if err != nil {
			fatal(err)
		}
		qs := gen.SampleN(*queries)
		fmt.Printf("loadgen: %d requests over %d queries, %d workers, budget %.2f\n",
			*reqs, len(qs), *conc, *budget)
		rep, err := srv.LoadGen(qs, *budget, *conc, *reqs)
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep)
		m := srv.Stats()
		fmt.Printf("cache: %d hits / %d misses (%d entries)\n", m.CacheHits, m.CacheMisses, m.CacheLen)
		return
	}

	fmt.Printf("listening on %s (POST /query, GET /stats, GET /healthz)\n", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ps3serve:", err)
	os.Exit(1)
}
