// TPC-H: decision-support reporting on the denormalized, skew-heavy TPCH*
// table. PS3 is trained on the random workload of §5.1.2 and then asked
// unseen TPC-H template queries (Q1, Q6, ...) — the generalization setting
// of §5.5.4 — at several sampling budgets.
//
//	go run ./examples/tpch
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"ps3/internal/core"
	"ps3/internal/dataset"
	"ps3/internal/picker"
	"ps3/internal/query"
)

func main() {
	ds, err := dataset.TPCHStar(dataset.Config{Rows: 90_000, Parts: 180, Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPCH*: %d rows, %d partitions, sorted by %v\n",
		ds.Table.NumRows(), ds.Table.NumParts(), ds.SortCols)

	sys, err := core.New(ds.Table, core.Options{Workload: ds.Workload, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := query.NewGenerator(ds.Workload, ds.Table, 14)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training on 100 random workload queries (TPC-H templates unseen)...")
	if err := sys.Train(gen.SampleN(100), nil); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	budgets := []float64{0.02, 0.05, 0.10, 0.20}
	fmt.Printf("\n%-6s%10s", "query", "groups")
	for _, b := range budgets {
		fmt.Printf("%14s", fmt.Sprintf("err@%.0f%%", b*100))
	}
	fmt.Println(" (avg rel err, PS3)")
	for _, tmpl := range dataset.TPCHTemplates() {
		q := tmpl.Instantiate(rng)
		ex, err := sys.MakeExample(q)
		if err != nil {
			log.Fatal(err)
		}
		if len(ex.TruthVals) == 0 {
			fmt.Printf("%-6s%10s  (no matching rows for these parameters)\n", tmpl.Name, "-")
			continue
		}
		fmt.Printf("%-6s%10d", tmpl.Name, len(ex.TruthVals))
		for _, b := range budgets {
			n := int(b*float64(ds.Table.NumParts()) + 0.5)
			sel := sys.Picker.Pick(q, ex.Features, n, rng)
			est := picker.EstimateFromPerPart(ex.Compiled, ex.PerPart, sel)
			fmt.Printf("%13.1f%%", avgRelErr(ex.TruthVals, est)*100)
		}
		fmt.Println()
	}
	fmt.Println("\nsee `ps3bench -exp fig9` for the full generalization experiment.")
}

func avgRelErr(truth, est map[string][]float64) float64 {
	var sum float64
	var cnt int
	for g, tv := range truth {
		for j := range tv {
			var e float64
			if v, ok := est[g]; ok {
				e = v[j]
			}
			switch {
			case tv[j] == 0 && e == 0:
				// exact
			case tv[j] == 0:
				sum++
			default:
				sum += math.Min(math.Abs(e-tv[j])/math.Abs(tv[j]), 1)
			}
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}
