// Quickstart: build a partitioned table, train PS3 on a workload, and
// answer a query approximately by reading a fraction of the partitions.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ps3/internal/core"
	"ps3/internal/query"
	"ps3/internal/table"
)

func main() {
	// 1. Ingest: a sales table of (region, product, amount, day), appended
	// in time order and sealed into 500-row partitions — the layout big-data
	// clusters actually have (§2.1: data stays in ingest order).
	schema := table.MustSchema(
		table.Column{Name: "region", Kind: table.Categorical},
		table.Column{Name: "product", Kind: table.Categorical},
		table.Column{Name: "amount", Kind: table.Numeric, Positive: true},
		table.Column{Name: "day", Kind: table.Date},
	)
	b, err := table.NewBuilder(schema, 500)
	if err != nil {
		log.Fatal(err)
	}
	regions := []string{"emea", "amer", "apac"}
	products := []string{"anvil", "rocket", "tnt", "magnet"}
	rng := rand.New(rand.NewSource(7))
	for day := 0; day < 100; day++ {
		for i := 0; i < 500; i++ {
			region := regions[rng.Intn(len(regions))]
			product := products[rng.Intn(len(products))]
			// Sales grow over time and the rocket launches on day 60.
			amount := (10 + rng.Float64()*90) * (1 + float64(day)/50)
			if product == "rocket" && day < 60 {
				amount = 0
			}
			num := []float64{0, 0, amount, float64(day)}
			cat := []string{region, product, "", ""}
			if err := b.Append(num, cat); err != nil {
				log.Fatal(err)
			}
		}
	}
	tbl := b.Finish()
	fmt.Printf("table: %d rows in %d partitions\n", tbl.NumRows(), tbl.NumParts())

	// 2. Offline: build summary statistics and train the picker on the
	// workload specification (which columns get grouped, filtered,
	// aggregated).
	wl := query.Workload{
		GroupableCols: []string{"region", "product"},
		PredicateCols: []string{"region", "product", "amount", "day"},
		AggCols:       []string{"amount"},
	}
	sys, err := core.New(tbl, core.Options{Workload: wl, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := query.NewGenerator(wl, tbl, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training on 60 workload queries...")
	if err := sys.Train(gen.SampleN(60), nil); err != nil {
		log.Fatal(err)
	}

	// 3. Online: revenue by product for the last month, reading 10% of
	// partitions.
	q := &query.Query{
		GroupBy: []string{"product"},
		Pred:    &query.Clause{Col: "day", Op: query.OpGe, Num: 70},
		Aggs: []query.Aggregate{
			{Kind: query.Sum, Expr: query.Col("amount"), Name: "revenue"},
			{Kind: query.Count, Name: "orders"},
		},
	}
	fmt.Printf("\nquery: %s\n\n", q)
	exact, err := sys.RunExact(q)
	if err != nil {
		log.Fatal(err)
	}
	approx, err := sys.Run(q, 0.10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s%14s%14s\n", "group", "exact", "approx(10%)")
	for g, ev := range exact.Values {
		av := approx.Values[g]
		if av == nil {
			av = make([]float64, len(ev))
		}
		fmt.Printf("%-24s%14.0f%14.0f\n", exact.Labels[g], ev[0], av[0])
	}
	fmt.Printf("\npartitions read: %d of %d\n", approx.PartsRead, tbl.NumParts())
}
