// Servicelog: the paper's motivating scenario (§1) — a production telemetry
// log (Aria-style) where one app version holds ~half the rows and rare
// versions hide in a few partitions. PS3's dashboards-style queries
// (volumes by version / network type) run at a 5% partition budget, and the
// outlier component keeps rare versions from vanishing.
//
//	go run ./examples/servicelog
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"ps3/internal/core"
	"ps3/internal/dataset"
	"ps3/internal/query"
)

func main() {
	ds, err := dataset.Aria(dataset.Config{Rows: 80_000, Parts: 160, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service log: %d rows, %d partitions, sorted by %v\n",
		ds.Table.NumRows(), ds.Table.NumParts(), ds.SortCols)

	sys, err := core.New(ds.Table, core.Options{Workload: ds.Workload, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := query.NewGenerator(ds.Workload, ds.Table, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training on 80 workload queries (one-time, offline)...")
	if err := sys.Train(gen.SampleN(80), nil); err != nil {
		log.Fatal(err)
	}

	dashboards := []*query.Query{
		{
			GroupBy: []string{"DeviceInfo_NetworkType"},
			Aggs: []query.Aggregate{
				{Kind: query.Sum, Expr: query.Col("records_received_count"), Name: "received"},
				{Kind: query.Avg, Expr: query.Col("olsize"), Name: "avg_payload"},
			},
		},
		{
			GroupBy: []string{"AppInfo_Version"},
			Pred:    &query.Clause{Col: "DeviceInfo_NetworkType", Op: query.OpEq, Strs: []string{"Cellular"}},
			Aggs: []query.Aggregate{
				{Kind: query.Count, Name: "events"},
			},
		},
		{
			Pred: &query.Clause{Col: "PipelineInfo_IngestionTime", Op: query.OpGe, Num: 20 * 24 * 60},
			Aggs: []query.Aggregate{
				{Kind: query.Sum, Expr: query.Col("records_sent_count"), Name: "sent_last10d"},
				{Kind: query.Sum, Expr: query.Col("records_tried_to_send_count").
					Sub(query.Col("records_sent_count")), Name: "dropped_last10d"},
			},
		},
	}

	const budget = 0.05
	for i, q := range dashboards {
		fmt.Printf("\n--- dashboard %d: %s\n", i+1, q)
		exact, err := sys.RunExact(q)
		if err != nil {
			log.Fatal(err)
		}
		approx, err := sys.Run(q, budget)
		if err != nil {
			log.Fatal(err)
		}
		// Show top groups and the relative error achieved.
		keys := make([]string, 0, len(exact.Values))
		for g := range exact.Values {
			keys = append(keys, g)
		}
		sort.Slice(keys, func(a, b int) bool {
			return math.Abs(exact.Values[keys[a]][0]) > math.Abs(exact.Values[keys[b]][0])
		})
		shown := keys
		if len(shown) > 8 {
			shown = shown[:8]
		}
		var errSum float64
		var errCnt int
		fmt.Printf("%-44s%16s%16s\n", "group", "exact", fmt.Sprintf("approx(%.0f%%)", budget*100))
		for _, g := range shown {
			ev, av := exact.Values[g], approx.Values[g]
			var a float64
			if av != nil {
				a = av[0]
			}
			if ev[0] != 0 {
				errSum += math.Min(math.Abs(a-ev[0])/math.Abs(ev[0]), 1)
				errCnt++
			}
			fmt.Printf("%-44s%16.0f%16.0f\n", exact.Labels[g], ev[0], a)
		}
		if len(keys) > len(shown) {
			fmt.Printf("(%d more groups)\n", len(keys)-len(shown))
		}
		if errCnt > 0 {
			fmt.Printf("top-group avg rel err %.1f%%, partitions read %d/%d\n",
				errSum/float64(errCnt)*100, approx.PartsRead, ds.Table.NumParts())
		}
	}
}
