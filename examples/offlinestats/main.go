// Offline statistics workflow: build the per-partition sketches once at
// ingest, persist them separately from the data (the paper's §2.3.1
// deployment model), then load the statistics store in a fresh "query
// optimizer" process and pick partitions without touching raw data. Also
// demonstrates the Appendix D.2 variance analysis: why partition-level
// sampling needs PS3-style selection where row-level sampling would not.
//
//	go run ./examples/offlinestats
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"ps3"
)

func main() {
	// --- Ingest process: build data + stats, persist both. ---
	schema := ps3.MustSchema(
		ps3.Column{Name: "tenant", Kind: ps3.Categorical},
		ps3.Column{Name: "latency_ms", Kind: ps3.Numeric, Positive: true},
		ps3.Column{Name: "bytes", Kind: ps3.Numeric, Positive: true},
	)
	b, err := ps3.NewBuilder(schema, 4_000)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	// Tenants arrive in contiguous runs (ingest order ≈ tenant order), and
	// one tenant is an order of magnitude heavier than the rest.
	tenants := []string{"acme", "globex", "initech", "umbrella", "hooli"}
	for ti, tenant := range tenants {
		rows := 40_000
		if tenant == "hooli" {
			rows = 160_000
		}
		for i := 0; i < rows; i++ {
			lat := 5 + rng.ExpFloat64()*20*float64(ti+1)
			sz := 100 + rng.Float64()*1e4
			if err := b.Append([]float64{0, lat, sz}, []string{tenant, "", ""}); err != nil {
				log.Fatal(err)
			}
		}
	}
	tbl := b.Finish()

	wl := ps3.Workload{
		GroupableCols: []string{"tenant"},
		PredicateCols: []string{"tenant", "latency_ms", "bytes"},
		AggCols:       []string{"latency_ms", "bytes"},
	}
	ingest, err := ps3.Open(tbl, ps3.Options{Workload: wl, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	var statsBlob bytes.Buffer
	n, err := ingest.Stats.WriteTo(&statsBlob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingest: %d rows, %d partitions; stats store = %d KB (%.4f%% of data)\n",
		tbl.NumRows(), tbl.NumParts(), n/1024, 100*float64(n)/float64(tbl.TotalBytes()))

	// --- Query-optimizer process: load stats, bind, train, answer. ---
	restored, err := ps3.ReadStats(&statsBlob)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := ps3.OpenWithStats(tbl, restored, ps3.Options{Workload: wl, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := ps3.NewGenerator(wl, tbl, 3)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Train(gen.SampleN(60), nil); err != nil {
		log.Fatal(err)
	}

	q := &ps3.Query{
		GroupBy: []string{"tenant"},
		Aggs: []ps3.Aggregate{
			{Kind: ps3.Avg, Expr: ps3.Col("latency_ms"), Name: "avg_latency"},
			{Kind: ps3.Count, Name: "requests"},
		},
	}
	exact, err := sys.RunExact(q)
	if err != nil {
		log.Fatal(err)
	}
	approx, err := sys.Run(q, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s (reading %d of %d partitions)\n", q, approx.PartsRead, tbl.NumParts())
	fmt.Printf("%-12s%16s%16s\n", "tenant", "exact avg_lat", "approx avg_lat")
	for g, ev := range exact.Values {
		av, ok := approx.Values[g]
		if !ok {
			av = make([]float64, len(ev))
		}
		fmt.Printf("%-12s%16.2f%16.2f\n", exact.Labels[g], ev[0], av[0])
	}

	// --- Appendix D.2: why partition-level sampling needs PS3. ---
	// For the total of bytes, compare the variance of uniform partition-
	// level vs row-level Poisson sampling at the same 15% fraction. Rows in
	// a partition share a tenant, so their contributions are correlated and
	// the partition-level variance is much larger — the gap PS3's non-
	// uniform selection exists to close.
	var partTotals []float64
	var rowVals [][]float64
	bi := 2 // "bytes" column
	for _, p := range tbl.Parts {
		var sum float64
		rows := make([]float64, p.Rows())
		for r := 0; r < p.Rows(); r++ {
			rows[r] = p.NumCol(bi)[r]
			sum += rows[r]
		}
		partTotals = append(partTotals, sum)
		rowVals = append(rowVals, rows)
	}
	pv, rv := ps3.PartitionVsRowVariance(partTotals, rowVals, 0.15)
	fmt.Printf("\nuniform-sampling variance for SUM(bytes) at 15%%:\n")
	fmt.Printf("  row-level:       %.3g\n", rv)
	fmt.Printf("  partition-level: %.3g  (%.0f× larger — Appendix D.2)\n", pv, pv/rv)
}
