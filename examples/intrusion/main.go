// Intrusion: security analytics over a KDD'99-style network log. Attack
// traffic is wildly skewed (smurf+neptune ≈ 80% of rows), so uniform
// partition samples either drown in flood traffic or miss rare attacks.
// This example contrasts PS3 with uniform partition sampling on an
// attack-breakdown query at the same budget.
//
//	go run ./examples/intrusion
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"ps3/internal/core"
	"ps3/internal/dataset"
	"ps3/internal/picker"
	"ps3/internal/query"
)

func main() {
	ds, err := dataset.KDD(dataset.Config{Rows: 80_000, Parts: 160, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network log: %d rows, %d partitions, sorted by %v\n",
		ds.Table.NumRows(), ds.Table.NumParts(), ds.SortCols)

	sys, err := core.New(ds.Table, core.Options{Workload: ds.Workload, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := query.NewGenerator(ds.Workload, ds.Table, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training on 80 workload queries...")
	if err := sys.Train(gen.SampleN(80), nil); err != nil {
		log.Fatal(err)
	}

	// How much suspicious TCP traffic did each attack type move?
	q := &query.Query{
		GroupBy: []string{"label"},
		Pred: query.NewAnd(
			&query.Clause{Col: "protocol_type", Op: query.OpEq, Strs: []string{"tcp"}},
		),
		Aggs: []query.Aggregate{
			{Kind: query.Count, Name: "connections"},
			{Kind: query.Sum, Expr: query.Col("src_bytes"), Name: "bytes_out"},
		},
	}
	fmt.Printf("\nquery: %s\n", q)

	ex, err := sys.MakeExample(q)
	if err != nil {
		log.Fatal(err)
	}
	const budget = 0.08
	n := int(budget*float64(ds.Table.NumParts()) + 0.5)

	ps3Sel, err := sys.Pick(q, budget)
	if err != nil {
		log.Fatal(err)
	}
	ps3Est := picker.EstimateFromPerPart(ex.Compiled, ex.PerPart, ps3Sel)
	rng := rand.New(rand.NewSource(33))
	uniEst := picker.EstimateFromPerPart(ex.Compiled, ex.PerPart,
		picker.Uniform(ds.Table.NumParts(), n, rng))

	keys := make([]string, 0, len(ex.TruthVals))
	for g := range ex.TruthVals {
		keys = append(keys, g)
	}
	sort.Slice(keys, func(a, b int) bool {
		return ex.TruthVals[keys[a]][0] > ex.TruthVals[keys[b]][0]
	})
	fmt.Printf("\n%-28s%14s%14s%14s\n", "attack", "exact conns", "PS3(8%)", "uniform(8%)")
	missPS3, missUni := 0, 0
	for _, g := range keys {
		tv := ex.TruthVals[g][0]
		pv, uok := 0.0, false
		if v, ok := ps3Est[g]; ok {
			pv = v[0]
		} else {
			missPS3++
		}
		var uv float64
		if v, ok := uniEst[g]; ok {
			uv, uok = v[0], true
		}
		if !uok {
			missUni++
		}
		fmt.Printf("%-28s%14.0f%14.0f%14.0f\n", ex.Compiled.GroupLabel(g), tv, pv, uv)
	}
	fmt.Printf("\nattack types missed at 8%% budget: PS3 %d, uniform %d (of %d)\n",
		missPS3, missUni, len(keys))
	relErr := func(est map[string][]float64) float64 {
		var sum float64
		var cnt int
		for g, tv := range ex.TruthVals {
			for j := range tv {
				var e float64
				if v, ok := est[g]; ok {
					e = v[j]
				}
				if tv[j] != 0 {
					sum += math.Min(math.Abs(e-tv[j])/math.Abs(tv[j]), 1)
					cnt++
				}
			}
		}
		return sum / float64(cnt) * 100
	}
	fmt.Printf("avg relative error: PS3 %.1f%%, uniform %.1f%%\n", relErr(ps3Est), relErr(uniEst))
}
