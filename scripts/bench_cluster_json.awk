# bench_cluster_json.awk — renders `go test -bench` output for the
# clustering-tail benchmarks (BenchmarkKMeans, BenchmarkPick/budget10pct)
# into BENCH_cluster.json. Invoked by `make bench-cluster` with -v date=...
# and -v gover=...; reads the concatenated raw benchmark output on stdin.
#
# Benchmark lines look like
#   BenchmarkKMeans/bounded-1   300   45678 ns/op   0.836 skipped-dist-frac   1024 B/op   5 allocs/op
# i.e. an iteration count followed by (value, unit) pairs; units become JSON
# keys. The speedup ratios are derived from the ns/op of paired benchmarks
# measured in the same run.

/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }

/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; names[n++] = name }
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/[\/-]/, "_", unit)
        metric[name, unit] = $i
        if (!((name, "units") in metric)) metric[name, "units"] = unit
        else metric[name, "units"] = metric[name, "units"] " " unit
    }
}

function emit(name,   units, nu, u, parts, first) {
    printf "    \"%s\": { ", name
    nu = split(metric[name, "units"], parts, " ")
    first = 1
    for (u = 1; u <= nu; u++) {
        if (!first) printf ", "
        printf "\"%s\": %s", parts[u], metric[name, parts[u]]
        first = 0
    }
    printf " }"
}

function ratio(a, b,   x, y) {
    x = metric[a, "ns_op"]; y = metric[b, "ns_op"]
    if (x > 0 && y > 0) return x / y
    return 0
}

END {
    printf "{\n"
    printf "  \"benchmark\": \"bench-cluster\",\n"
    printf "  \"recorded\": \"%s\",\n", date
    printf "  \"host\": \"%s (single vCPU, shared; expect double-digit run-to-run variance)\",\n", cpu
    printf "  \"go\": \"%s\",\n", gover
    printf "  \"command\": \"make bench-cluster\",\n"
    printf "  \"results\": {\n"
    for (i = 0; i < n; i++) {
        emit(names[i])
        printf (i < n - 1) ? ",\n" : "\n"
    }
    printf "  },\n"
    printf "  \"derived\": {\n"
    printf "    \"kmeans_bounded_speedup\": %.2f,\n", ratio("BenchmarkKMeans/reference", "BenchmarkKMeans/bounded")
    # The paired sub-benchmark interleaves reference and batch picks, so its
    # in-run speedup metric is robust to host load; fall back to the ns/op
    # ratio of the separate sub-benchmarks if it is absent.
    paired = metric["BenchmarkPick/budget10pct/paired", "speedup"]
    if (paired == "" || paired + 0 == 0)
        paired = ratio("BenchmarkPick/budget10pct/reference", "BenchmarkPick/budget10pct/batch")
    printf "    \"pick_budget10pct_speedup\": %.2f\n", paired
    printf "  },\n"
    printf "  \"notes\": [\n"
    printf "    \"pick_budget10pct_speedup comes from the /paired sub-benchmark, which times one reference and one batch pick back to back per iteration so both see the same host load; it is the number to trust on this shared box.\",\n"
    printf "    \"The separate /reference and /batch ns/op readings drift apart by double digits run to run (the reference allocates ~20x more per op and inflates more under memory pressure), so their ratio over- or under-states the paired measurement.\",\n"
    printf "    \"Remaining pick time is split between the GBT funnel (Predict + FillRow, zero-alloc since the flattened-inference change) and the bounded clustering tail; the skipped-dist-frac metric reports how many point-center distance computations the triangle-inequality bounds eliminated.\"\n"
    printf "  ]\n"
    printf "}\n"
}
