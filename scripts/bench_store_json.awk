# bench_store_json.awk — renders `go test -bench` output for the store
# encoding benchmarks (BenchmarkStoreEncodedColdScan, BenchmarkStoreEncoded-
# HitRate, plus the pre-existing BenchmarkStore* scans) into BENCH_store.json.
# Invoked by `make bench-store` with -v date=... and -v gover=...; reads the
# concatenated raw benchmark output on stdin.
#
# Benchmark lines look like
#   BenchmarkStoreEncodedColdScan/kdd/enc-1  500  1240647 ns/op  3739.98 MB/s  9.548 compression-x
# i.e. an iteration count followed by (value, unit) pairs; units become JSON
# keys. The derived section distills the acceptance claims: per-dataset
# compression ratio, encoded-vs-raw cold-scan speedup, and the cache hit rate
# of the encoded store at a third of the raw budget.

/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }

/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; names[n++] = name }
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/[\/-]/, "_", unit)
        metric[name, unit] = $i
        if (!((name, "units") in metric)) metric[name, "units"] = unit
        else metric[name, "units"] = metric[name, "units"] " " unit
    }
}

function emit(name,   units, nu, u, parts, first) {
    printf "    \"%s\": { ", name
    nu = split(metric[name, "units"], parts, " ")
    first = 1
    for (u = 1; u <= nu; u++) {
        if (!first) printf ", "
        printf "\"%s\": %s", parts[u], metric[name, parts[u]]
        first = 0
    }
    printf " }"
}

function ratio(a, b,   x, y) {
    x = metric[a, "ns_op"]; y = metric[b, "ns_op"]
    if (x > 0 && y > 0) return x / y
    return 0
}

END {
    printf "{\n"
    printf "  \"benchmark\": \"bench-store\",\n"
    printf "  \"recorded\": \"%s\",\n", date
    printf "  \"host\": \"%s (single vCPU, shared; expect double-digit run-to-run variance)\",\n", cpu
    printf "  \"go\": \"%s\",\n", gover
    printf "  \"command\": \"make bench-store\",\n"
    printf "  \"results\": {\n"
    for (i = 0; i < n; i++) {
        emit(names[i])
        printf (i < n - 1) ? ",\n" : "\n"
    }
    printf "  },\n"
    printf "  \"derived\": {\n"
    printf "    \"compression_x\": {"
    first = 1
    for (i = 0; i < n; i++) {
        name = names[i]
        if (name ~ /^BenchmarkStoreEncodedColdScan\/.*\/enc$/) {
            ds = name
            sub(/^BenchmarkStoreEncodedColdScan\//, "", ds)
            sub(/\/enc$/, "", ds)
            if (!first) printf ", "
            printf "\"%s\": %.2f", ds, metric[name, "compression_x"]
            first = 0
        }
    }
    printf " },\n"
    printf "    \"cold_scan_speedup_enc_vs_raw\": {"
    first = 1
    for (i = 0; i < n; i++) {
        name = names[i]
        if (name ~ /^BenchmarkStoreEncodedColdScan\/.*\/enc$/) {
            ds = name
            sub(/^BenchmarkStoreEncodedColdScan\//, "", ds)
            sub(/\/enc$/, "", ds)
            if (!first) printf ", "
            printf "\"%s\": %.2f", ds, ratio("BenchmarkStoreEncodedColdScan/" ds "/raw", name)
            first = 0
        }
    }
    printf " },\n"
    printf "    \"kdd_hit_frac_raw_at_25pct_budget\": %s,\n", metric["BenchmarkStoreEncodedHitRate/kdd/raw-budget25pct", "hit_frac"]
    printf "    \"kdd_hit_frac_enc_at_8pct_budget\": %s\n", metric["BenchmarkStoreEncodedHitRate/kdd/enc-budget8pct", "hit_frac"]
    printf "  },\n"
    printf "  \"notes\": [\n"
    printf "    \"SetBytes charges the decoded (logical) volume on every cold scan, so MB/s is comparable between layouts: the encoded side reads fewer file bytes but pays bit-unpacking per partition.\",\n"
    printf "    \"The kdd hit-frac pair is the headline cache claim: the encoded store at 1/3 of the raw cache budget (1/12 of the dataset) sustains a higher uniform-random hit rate than the raw store at the full 25%% budget — >= 3x fewer cache bytes at equal-or-better hit rate.\",\n"
    printf "    \"aria compresses ~2.2x, below the 3x budget cut, and its enc-budget8pct hit rate honestly lands below raw-budget25pct; the equal-budget enc runs show the other side of the trade (more resident partitions at the same bytes).\"\n"
    printf "  ]\n"
    printf "}\n"
}
