# bench_ingest_json.awk — renders `go test -bench` output for the live
# ingest benchmarks (BenchmarkIngestAppend, BenchmarkIngestFlush,
# BenchmarkIngestSwapStall) into BENCH_ingest.json. Invoked by
# `make bench-ingest` with -v date=... and -v gover=...; reads the raw
# benchmark output on stdin.
#
# Benchmark lines look like
#   BenchmarkIngestAppend/window=0s-1   500   211042 ns/op   303255 rows/s   ...
# i.e. an iteration count followed by (value, unit) pairs; units become JSON
# keys. The group-commit amortization ratio is derived from the two append
# sub-benchmarks measured in the same run.

/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }

/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; names[n++] = name }
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/[\/-]/, "_", unit)
        metric[name, unit] = $i
        if (!((name, "units") in metric)) metric[name, "units"] = unit
        else metric[name, "units"] = metric[name, "units"] " " unit
    }
}

function emit(name,   units, nu, u, parts, first) {
    printf "    \"%s\": { ", name
    nu = split(metric[name, "units"], parts, " ")
    first = 1
    for (u = 1; u <= nu; u++) {
        if (!first) printf ", "
        printf "\"%s\": %s", parts[u], metric[name, parts[u]]
        first = 0
    }
    printf " }"
}

END {
    printf "{\n"
    printf "  \"benchmark\": \"bench-ingest\",\n"
    printf "  \"recorded\": \"%s\",\n", date
    printf "  \"host\": \"%s (single vCPU, shared; expect double-digit run-to-run variance)\",\n", cpu
    printf "  \"go\": \"%s\",\n", gover
    printf "  \"command\": \"make bench-ingest\",\n"
    printf "  \"results\": {\n"
    for (i = 0; i < n; i++) {
        emit(names[i])
        printf (i < n - 1) ? ",\n" : "\n"
    }
    printf "  },\n"
    printf "  \"derived\": {\n"
    sync_rate = metric["BenchmarkIngestAppend/window=0s", "rows_s"]
    group_rate = metric["BenchmarkIngestAppend/window=2ms", "rows_s"]
    ratio = 0
    if (sync_rate > 0 && group_rate > 0) ratio = group_rate / sync_rate
    printf "    \"group_commit_throughput_ratio\": %.2f,\n", ratio
    printf "    \"flush_ms\": %s,\n", metric["BenchmarkIngestFlush", "flush_ms"] + 0
    printf "    \"swap_stall_p99_ms\": %s\n", metric["BenchmarkIngestSwapStall", "p99_query_ms"] + 0
    printf "  },\n"
    printf "  \"notes\": [\n"
    printf "    \"Append rows/s counts acknowledged (fsync-durable) rows; window=0s fsyncs every 64-row batch, window=2ms amortizes the fsync across batches landing in the same group-commit window. With a single appender the window mostly adds latency, so the ratio shines only under concurrent writers.\",\n"
    printf "    \"flush-ms covers the whole segment cut: seal, incremental stats extension, store-format encode+fsync+rename, WAL rotation with re-log of the surviving memtable, and snapshot rebuild.\",\n"
    printf "    \"swap_stall_p99_ms is the p99 latency of queries served through serve.Server while appends, flushes and hot snapshot swaps run underneath; the swaps column counts how many snapshot versions were installed during the measurement.\"\n"
    printf "  ]\n"
    printf "}\n"
}
