module ps3

go 1.24
